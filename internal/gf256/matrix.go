package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: matrix dimensions must be positive")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// IdentityMatrix returns the n x n identity matrix.
func IdentityMatrix(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// VandermondeMatrix returns the rows x cols matrix with entry (r, c) equal
// to Generator^(r*c). Any cols x cols submatrix formed from distinct rows is
// invertible, which is the property Reed-Solomon relies on.
func VandermondeMatrix(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c))
		}
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulAddSlice(a, out.Row(r), other.Row(k))
		}
	}
	return out
}

// SubMatrix returns a copy of the rectangle [r0, r1) x [c0, c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows of m, in the
// given order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ErrSingular is returned by Invert when the matrix has no inverse.
var ErrSingular = errors.New("gf256: matrix is singular")

// Invert returns the inverse of the square matrix m using Gauss-Jordan
// elimination with partial pivoting, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := IdentityMatrix(n)

	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot becomes 1.
		if p := work.At(col, col); p != 1 {
			pInv := Inv(p)
			MulSlice(pInv, work.Row(col), work.Row(col))
			MulSlice(pInv, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.At(r, col); f != 0 {
				MulAddSlice(f, work.Row(r), work.Row(col))
				MulAddSlice(f, inv.Row(r), inv.Row(col))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
