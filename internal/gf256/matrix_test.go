package gf256

import (
	"math/rand"
	"testing"
)

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = byte(rng.Intn(256))
	}
	id := IdentityMatrix(4)
	left := id.Mul(m)
	right := m.Mul(id)
	for i := range m.Data {
		if left.Data[i] != m.Data[i] || right.Data[i] != m.Data[i] {
			t.Fatal("identity multiplication changed the matrix")
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		var m *Matrix
		var inv *Matrix
		var err error
		// Rejection-sample an invertible matrix.
		for {
			m = NewMatrix(n, n)
			for i := range m.Data {
				m.Data[i] = byte(rng.Intn(256))
			}
			inv, err = m.Invert()
			if err == nil {
				break
			}
		}
		prod := m.Mul(inv)
		id := IdentityMatrix(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("n=%d: m * m^-1 != I", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	// Two equal rows => singular.
	copy(m.Row(0), []byte{1, 2, 3})
	copy(m.Row(1), []byte{1, 2, 3})
	copy(m.Row(2), []byte{4, 5, 6})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("Invert of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// The defining property used by Reed-Solomon: every square submatrix
	// built from distinct rows of a Vandermonde matrix is invertible.
	const rows, cols = 20, 5
	v := VandermondeMatrix(rows, cols)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(rows)[:cols]
		sub := v.SelectRows(perm)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Vandermonde submatrix rows %v not invertible: %v", perm, err)
		}
	}
}

func TestSelectRowsAndSubMatrix(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := range m.Data {
		m.Data[i] = byte(i)
	}
	sel := m.SelectRows([]int{2, 0})
	if sel.Rows != 2 || sel.At(0, 0) != 6 || sel.At(1, 2) != 2 {
		t.Fatalf("SelectRows wrong content: %+v", sel)
	}
	sub := m.SubMatrix(1, 3, 1, 3)
	if sub.Rows != 2 || sub.Cols != 2 || sub.At(0, 0) != 4 || sub.At(1, 1) != 8 {
		t.Fatalf("SubMatrix wrong content: %+v", sub)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Mul did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func BenchmarkMatrixInvert32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := VandermondeMatrix(64, 32).SelectRows(rng.Perm(64)[:32])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
