package harness

import (
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/stats"
	"dledger/internal/telemetry/txtrace"
	"dledger/internal/trace"
)

// Scale is the default down-scaling factor applied to bandwidths and
// batch sizes so that simulated minutes of a 16-node WAN run in seconds
// of CPU. Rates and block sizes shrink together, so the queueing shapes
// (who waits on whom) are preserved; reported throughputs are divided by
// the factor again, i.e. printed in paper-equivalent MB/s. EXPERIMENTS.md
// discusses the fidelity of this substitution.
const Scale = 1.0 / 64

// GeoParams configures the geo-distributed experiments (Fig 8, 9, 15).
type GeoParams struct {
	Cities   []trace.City
	Mode     core.Mode
	Scale    float64
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// StagedRetrieval enables the staged chunk-request extension (see
	// core.Config.StagedRetrieval and the abl-retrieval benchmark).
	StagedRetrieval bool
	// Telemetry instruments every node (ClusterOptions.Telemetry), used
	// to demonstrate the enabled-path overhead stays within noise.
	Telemetry bool
	// MaxEpochLag bounds dispersal pipelining (the §4.5 lag guard,
	// core.Config.MaxEpochLag). Zero leaves it unbounded — the Fig 8
	// 16-city default. Large-N geo points need a bound for the same
	// reason the Fig 12 sweep does: with infinite backlog, unbounded
	// dispersal would starve retrieval entirely.
	MaxEpochLag uint64
}

func (p *GeoParams) defaults() {
	if p.Cities == nil {
		p.Cities = trace.AWSCities
	}
	if p.Scale == 0 {
		p.Scale = Scale
	}
	if p.Duration == 0 {
		p.Duration = 60 * time.Second
	}
	if p.Warmup == 0 {
		p.Warmup = p.Duration / 5
	}
}

// geoDelay derives a deterministic 40–140 ms one-way delay per city pair,
// standing in for real inter-city latencies.
func geoDelay(n int, seed int64) func(from, to int) time.Duration {
	d := make([][]time.Duration, n)
	rng := newSplitMix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	for i := range d {
		d[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ms := 40 + rng.next()%101
			d[i][j] = time.Duration(ms) * time.Millisecond
			d[j][i] = d[i][j]
		}
	}
	return func(from, to int) time.Duration {
		if from == to {
			return 0
		}
		return d[from][to]
	}
}

type splitMix struct{ x uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{x: seed} }
func (s *splitMix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ScaledReplicaParams returns replica params with the paper's Nagle
// thresholds (100 ms / 150 KB), the byte threshold scaled alongside
// bandwidth.
func ScaledReplicaParams(scale float64) replica.Params {
	return replica.Params{
		BatchDelay: 100 * time.Millisecond,
		BatchBytes: int(float64(150<<10) * scale),
	}
}

func scaledReplica(scale float64) replica.Params { return ScaledReplicaParams(scale) }

// GeoResult is a per-node throughput profile in paper-equivalent MB/s.
type GeoResult struct {
	Mode       core.Mode
	Names      []string
	Throughput []float64 // per node, MB/s (already re-scaled)
	Mean       float64
}

// RunGeo measures per-server throughput on a geo profile under infinite
// backlog (Fig 8 / Fig 15 methodology).
func RunGeo(p GeoParams) (*GeoResult, error) {
	p.defaults()
	n := len(p.Cities)
	samples := int(p.Duration/time.Second) + 2
	c, err := NewCluster(ClusterOptions{
		Core:            core.Config{N: n, F: (n - 1) / 3, Mode: p.Mode, StagedRetrieval: p.StagedRetrieval, MaxEpochLag: p.MaxEpochLag},
		Replica:         scaledReplica(p.Scale),
		Egress:          trace.CityTraces(p.Cities, p.Scale, samples, time.Second, p.Seed),
		Delay:           geoDelay(n, p.Seed),
		TxSize:          256,
		InfiniteBacklog: true,
		Telemetry:       p.Telemetry,
		Seed:            p.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	c.Run(p.Duration)
	res := &GeoResult{Mode: p.Mode, Names: trace.Names(p.Cities)}
	var sum float64
	for i := range c.Replicas {
		mbps := c.Throughput(i, p.Warmup, p.Duration) / p.Scale / trace.MB
		res.Throughput = append(res.Throughput, mbps)
		sum += mbps
	}
	res.Mean = sum / float64(n)
	return res, nil
}

// ProgressResult is Fig 9: per-node confirmed bytes over time.
type ProgressResult struct {
	Mode  core.Mode
	Names []string
	// Series is per node; values are cumulative confirmed bytes divided
	// by scale (paper-equivalent bytes).
	Series []*stats.TimeSeries
}

// RunProgress records each node's confirmation progress on the geo
// profile (Fig 9 plots DL vs HB-Link on the same scale).
func RunProgress(p GeoParams) (*ProgressResult, error) {
	p.defaults()
	n := len(p.Cities)
	samples := int(p.Duration/time.Second) + 2
	c, err := NewCluster(ClusterOptions{
		Core:            core.Config{N: n, F: (n - 1) / 3, Mode: p.Mode},
		Replica:         scaledReplica(p.Scale),
		Egress:          trace.CityTraces(p.Cities, p.Scale, samples, time.Second, p.Seed),
		Delay:           geoDelay(n, p.Seed),
		TxSize:          256,
		InfiniteBacklog: true,
		Seed:            p.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := range c.Replicas {
		c.Replicas[i].Stats.Progress.MinGap = 100 * time.Millisecond
	}
	c.Start()
	c.Run(p.Duration)
	res := &ProgressResult{Mode: p.Mode, Names: trace.Names(p.Cities)}
	for i := range c.Replicas {
		ts := &stats.TimeSeries{}
		src := &c.Replicas[i].Stats.Progress
		for k := range src.Times {
			ts.Force(src.Times[k], src.Values[k]/p.Scale)
		}
		res.Series = append(res.Series, ts)
	}
	return res, nil
}

// LatencyParams configures the load-sweep latency experiment (Fig 10).
type LatencyParams struct {
	Cities   []trace.City
	Mode     core.Mode
	Scale    float64
	Duration time.Duration
	Warmup   time.Duration
	// LoadPerNode is the offered load per node in paper-equivalent
	// bytes/second (it is multiplied by Scale internally).
	LoadPerNode float64
	Seed        int64
	// Telemetry instruments every node; LatencyResult.Stages then
	// carries the per-segment lifecycle latency panel.
	Telemetry bool

	batchDelay time.Duration // optional override (abl-batch)
	batchBytes int           // optional override, paper-equivalent (abl-batch)
}

// LagGuardResult reports the abl-lag ablation: throughput and the final
// dispersal-vs-delivery gap under a given §4.5 P bound.
type LagGuardResult struct {
	MaxEpochLag uint64
	Throughput  float64 // mean per-node, paper-equivalent MB/s
	FinalLag    float64 // mean over nodes, epochs
}

// RunLagGuard measures the effect of the §4.5 "stop proposing when more
// than P epochs behind" mitigation on a saturated fixed-block cluster.
func RunLagGuard(maxLag uint64, duration time.Duration, seed int64) (*LagGuardResult, error) {
	const n = 16
	scale := ScalabilityScale
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(10 * trace.MB * scale)
	}
	rp := scaledReplica(scale)
	rp.FixedBlockBytes = int(float64(500<<10) * scale)
	c, err := NewCluster(ClusterOptions{
		Core:            core.Config{N: n, F: (n - 1) / 3, Mode: core.ModeDL, MaxEpochLag: maxLag},
		Replica:         rp,
		Egress:          traces,
		TxSize:          256,
		InfiniteBacklog: true,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	c.Run(duration)
	res := &LagGuardResult{MaxEpochLag: maxLag}
	var th, lag stats.Welford
	for i := 0; i < n; i++ {
		th.Add(c.Throughput(i, duration/5, duration) / scale / trace.MB)
		eng := c.Replicas[i].Engine()
		lag.Add(float64(eng.DispersalEpoch()) - float64(eng.DeliveredEpoch()))
	}
	res.Throughput, res.FinalLag = th.Mean(), lag.Mean()
	return res, nil
}

// RunGeoStaged is RunGeo with the retrieval policy made explicit, used by
// the abl-retrieval benchmark.
func RunGeoStaged(p GeoParams, staged bool) (*GeoResult, error) {
	p.StagedRetrieval = staged
	return RunGeo(p)
}

// RunLatencyWithBatch is RunLatency with overridden Nagle thresholds,
// used by the abl-batch benchmark. batchBytes is paper-equivalent (it is
// scaled internally alongside bandwidth); zero keeps the default.
func RunLatencyWithBatch(p LatencyParams, batchDelay time.Duration, batchBytes int) (*LatencyResult, error) {
	p.batchDelay = batchDelay
	p.batchBytes = batchBytes
	return RunLatency(p)
}

// StageLatency summarizes one epoch-lifecycle segment's telemetry
// histogram for a load point: quantiles in milliseconds (mean across
// nodes) and the total observation count.
type StageLatency struct {
	P50Ms, P95Ms float64
	Count        uint64
}

// LatencyResult reports per-node latency percentiles for one load point.
type LatencyResult struct {
	Mode        core.Mode
	LoadPerNode float64 // paper-equivalent bytes/s
	Names       []string
	P5, P50, P95, P99 []time.Duration // local-transaction latency per node
	AllP50, AllP95    []time.Duration // all-transaction latency (Fig 14)
	DeliveredPayload  []int64
	// Stages is the lifecycle latency panel (disperse, ba, retrieve,
	// e2e from dl_epoch_stage_seconds); nil without Params.Telemetry.
	Stages map[string]StageLatency
	// Phases is the sampled transaction-journey decomposition
	// (dl_tx_phase_seconds): where a transaction's inclusion-to-commit
	// latency actually goes. Nil without Params.Telemetry. The
	// admit_wait and proof phases are hub-side and absent in the
	// emulated cluster (loads are injected below the gateway).
	Phases map[string]StageLatency
}

// LatencyScale is the default scale for latency experiments. Latency runs
// are load-limited rather than bandwidth-limited, so they can afford a
// larger scale; a larger scale keeps per-message fixed overheads (headers,
// proofs — which do not shrink with the scale factor) a small fraction of
// the scaled bandwidth, as they are at paper scale.
const LatencyScale = 1.0 / 8

// RunLatency measures confirmation latency at one offered load.
func RunLatency(p LatencyParams) (*LatencyResult, error) {
	if p.Cities == nil {
		p.Cities = trace.AWSCities
	}
	if p.Scale == 0 {
		p.Scale = LatencyScale
	}
	if p.Duration == 0 {
		p.Duration = 60 * time.Second
	}
	if p.Warmup == 0 {
		p.Warmup = p.Duration / 5
	}
	n := len(p.Cities)
	samples := int(p.Duration/time.Second) + 2
	rp := scaledReplica(p.Scale)
	if p.batchDelay != 0 {
		rp.BatchDelay = p.batchDelay
	}
	if p.batchBytes != 0 {
		rp.BatchBytes = int(float64(p.batchBytes) * p.Scale)
	}
	c, err := NewCluster(ClusterOptions{
		Core:        core.Config{N: n, F: (n - 1) / 3, Mode: p.Mode},
		Replica:     rp,
		Egress:      trace.CityTraces(p.Cities, p.Scale, samples, time.Second, p.Seed),
		Delay:       geoDelay(n, p.Seed),
		TxSize:      256,
		LoadPerNode: p.LoadPerNode * p.Scale,
		Telemetry:   p.Telemetry,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	c.Run(p.Duration)
	res := &LatencyResult{Mode: p.Mode, LoadPerNode: p.LoadPerNode, Names: trace.Names(p.Cities)}
	for i := range c.Replicas {
		local := &c.Replicas[i].Stats.LatLocal
		all := &c.Replicas[i].Stats.LatAll
		res.P5 = append(res.P5, local.Percentile(5))
		res.P50 = append(res.P50, local.Percentile(50))
		res.P95 = append(res.P95, local.Percentile(95))
		res.P99 = append(res.P99, local.Percentile(99))
		res.AllP50 = append(res.AllP50, all.Percentile(50))
		res.AllP95 = append(res.AllP95, all.Percentile(95))
		res.DeliveredPayload = append(res.DeliveredPayload, c.Replicas[i].Stats.DeliveredPayload)
	}
	if p.Telemetry {
		res.Stages = stagePanel(c)
		res.Phases = phasePanel(c)
	}
	return res, nil
}

// stagePanel aggregates every node's dl_epoch_stage_seconds histograms
// into the per-segment latency panel: quantiles averaged across the
// nodes that observed the segment, counts summed.
func stagePanel(c *Cluster) map[string]StageLatency {
	out := map[string]StageLatency{}
	for _, seg := range []string{"disperse", "ba", "retrieve", "e2e"} {
		var sl StageLatency
		var sum50, sum95 float64
		nodes := 0
		for i := range c.Replicas {
			h := c.Tels[i].Registry().FindHistogram("dl_epoch_stage_seconds", `stage="`+seg+`"`)
			if h.Count() == 0 {
				continue
			}
			sl.Count += h.Count()
			sum50 += float64(h.Quantile(0.50)) / float64(time.Millisecond)
			sum95 += float64(h.Quantile(0.95)) / float64(time.Millisecond)
			nodes++
		}
		if nodes > 0 {
			sl.P50Ms = sum50 / float64(nodes)
			sl.P95Ms = sum95 / float64(nodes)
			out[seg] = sl
		}
	}
	return out
}

// phasePanel aggregates every node's dl_tx_phase_seconds histograms —
// the sampled transaction-journey decomposition — the same way
// stagePanel aggregates the epoch lifecycle: quantiles averaged across
// the nodes that observed the phase, counts summed. Phases no node
// observed (admit_wait/proof without a gateway) are omitted.
func phasePanel(c *Cluster) map[string]StageLatency {
	out := map[string]StageLatency{}
	for p := txtrace.Phase(0); p < txtrace.NumPhases; p++ {
		var sl StageLatency
		var sum50, sum95 float64
		nodes := 0
		for i := range c.Replicas {
			h := c.Tels[i].Registry().FindHistogram(txtrace.MetricName, `phase="`+p.String()+`"`)
			if h.Count() == 0 {
				continue
			}
			sl.Count += h.Count()
			sum50 += float64(h.Quantile(0.50)) / float64(time.Millisecond)
			sum95 += float64(h.Quantile(0.95)) / float64(time.Millisecond)
			nodes++
		}
		if nodes > 0 {
			sl.P50Ms = sum50 / float64(nodes)
			sl.P95Ms = sum95 / float64(nodes)
			out[p.String()] = sl
		}
	}
	return out
}

// ControlledParams configures the controlled experiments of §6.3
// (Fig 11a/11b): 16 nodes, flat 100 ms delay, synthetic bandwidth.
type ControlledParams struct {
	N        int
	Mode     core.Mode
	Scale    float64
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// Temporal selects Gauss-Markov traces (Fig 11b); otherwise constant
	// rates are used. Spatial selects the 10+0.5i MB/s profile (Fig 11a);
	// otherwise all nodes get 10 MB/s.
	Temporal bool
	Spatial  bool
	// PriorityWeight overrides T (for the priority ablation); 0 = 30.
	PriorityWeight float64
}

func (p *ControlledParams) defaults() {
	if p.N == 0 {
		p.N = 16
	}
	if p.Scale == 0 {
		p.Scale = Scale
	}
	if p.Duration == 0 {
		p.Duration = 60 * time.Second
	}
	if p.Warmup == 0 {
		p.Warmup = p.Duration / 5
	}
}

// ControlledResult reports per-node and aggregate throughput.
type ControlledResult struct {
	Mode       core.Mode
	Throughput []float64 // per node, paper-equivalent MB/s
	Mean, Std  float64
	// EpochRate is the mean dispersal-pipeline progress in epochs/second
	// — the quantity the §5 priority scheme protects.
	EpochRate float64
}

// RunControlled runs one controlled-setting experiment.
func RunControlled(p ControlledParams) (*ControlledResult, error) {
	p.defaults()
	traces := make([]trace.Trace, p.N)
	samples := int(p.Duration/time.Second) + 2
	for i := 0; i < p.N; i++ {
		mean := 10.0 * trace.MB * p.Scale
		if p.Spatial {
			mean = (10.0 + 0.5*float64(i)) * trace.MB * p.Scale
		}
		if p.Temporal {
			traces[i] = trace.GaussMarkov(trace.GaussMarkovParams{
				Mean:  mean,
				Sigma: 5.0 * trace.MB * p.Scale,
				Alpha: 0.98,
				Tick:  time.Second,
			}, samples, p.Seed+int64(i)*131)
		} else {
			traces[i] = trace.Constant(mean)
		}
	}
	c, err := NewCluster(ClusterOptions{
		Core:            core.Config{N: p.N, F: (p.N - 1) / 3, Mode: p.Mode},
		Replica:         scaledReplica(p.Scale),
		Egress:          traces,
		TxSize:          256,
		InfiniteBacklog: true,
		Seed:            p.Seed,
		PriorityWeight:  p.PriorityWeight,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	c.Run(p.Duration)
	res := &ControlledResult{Mode: p.Mode}
	var w, er stats.Welford
	for i := 0; i < p.N; i++ {
		mbps := c.Throughput(i, p.Warmup, p.Duration) / p.Scale / trace.MB
		res.Throughput = append(res.Throughput, mbps)
		w.Add(mbps)
		er.Add(float64(c.Replicas[i].Engine().DispersalEpoch()) / p.Duration.Seconds())
	}
	res.Mean, res.Std = w.Mean(), w.StdDev()
	res.EpochRate = er.Mean()
	return res, nil
}

// ScaleParams configures the scalability experiments (Fig 12, 13).
type ScaleParams struct {
	N          int
	BlockBytes int // paper-equivalent block size (scaled internally)
	Scale      float64
	Duration   time.Duration
	Warmup     time.Duration
	Seed       int64
}

// ScaleResult reports Fig 12's throughput and Fig 13's dispersal-traffic
// fraction for one (N, block size) point.
type ScaleResult struct {
	N                 int
	BlockBytes        int
	Throughput        float64 // mean per-node, paper-equivalent MB/s
	ThroughputStd     float64
	DispersalFraction float64 // mean across nodes
}

// ScalabilityScale is the default scale of the cluster-size sweeps.
// Per-message fixed costs (headers, quorum votes) do not shrink with the
// scale factor, and at N >= 31 they are Θ(N²) per epoch; a deeper
// down-scaling would let them dominate the scaled bandwidth, which no
// paper-scale deployment experiences.
const ScalabilityScale = 1.0 / 8

// RunScalability runs one point of the cluster-size sweep: uniform
// 10 MB/s caps, 100 ms delays, fixed-size blocks.
func RunScalability(p ScaleParams) (*ScaleResult, error) {
	if p.Scale == 0 {
		p.Scale = ScalabilityScale
	}
	if p.Duration == 0 {
		p.Duration = 60 * time.Second
	}
	if p.Warmup == 0 {
		p.Warmup = p.Duration / 5
	}
	traces := make([]trace.Trace, p.N)
	for i := range traces {
		traces[i] = trace.Constant(10 * trace.MB * p.Scale)
	}
	rp := scaledReplica(p.Scale)
	rp.FixedBlockBytes = int(float64(p.BlockBytes) * p.Scale)
	c, err := NewCluster(ClusterOptions{
		// The sweep enables the §4.5 lag guard (P = 8): with fixed-size
		// blocks and infinite backlog, unbounded dispersal pipelining
		// would otherwise starve retrieval entirely at large N, where
		// the Θ(N²) per-epoch agreement traffic is a large fraction of
		// each node's (scaled) bandwidth.
		Core:            core.Config{N: p.N, F: (p.N - 1) / 3, Mode: core.ModeDL, MaxEpochLag: 8},
		Replica:         rp,
		Egress:          traces,
		TxSize:          256,
		InfiniteBacklog: true,
		Seed:            p.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	c.Run(p.Duration)
	res := &ScaleResult{N: p.N, BlockBytes: p.BlockBytes}
	var w stats.Welford
	var frac stats.Welford
	for i := 0; i < p.N; i++ {
		w.Add(c.Throughput(i, p.Warmup, p.Duration) / p.Scale / trace.MB)
		frac.Add(c.DispersalFraction(i))
	}
	res.Throughput, res.ThroughputStd = w.Mean(), w.StdDev()
	res.DispersalFraction = frac.Mean()
	return res, nil
}
