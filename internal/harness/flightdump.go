package harness

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"dledger/internal/telemetry"
)

// epochRef extracts "epoch N" references from invariant-violation text.
var epochRef = regexp.MustCompile(`epoch (\d+)`)

// ViolationEpochs parses the epoch numbers named by a batch of invariant
// violations, deduplicated and sorted. Violations that name no epoch
// contribute nothing; callers should dump unfiltered when the result is
// empty.
func ViolationEpochs(violations []string) []uint64 {
	seen := map[uint64]bool{}
	for _, v := range violations {
		for _, m := range epochRef.FindAllStringSubmatch(v, -1) {
			if e, err := strconv.ParseUint(m[1], 10, 64); err == nil {
				seen[e] = true
			}
		}
	}
	out := make([]uint64, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// flightDumpCap bounds the per-node event count a dump renders, keeping
// failure reports readable when a violation implicates a busy epoch.
const flightDumpCap = 256

// FlightDump renders every node's flight-recorder journal as one
// cross-node text report, filtered to the given epochs (nil/empty =
// everything). Events with epoch 0 and no epoch affinity (fsync,
// sync-page) always pass the filter — they are the ambient I/O context a
// violation post-mortem wants alongside the protocol events. Nodes
// without telemetry render as absent.
func FlightDump(tels []*telemetry.Metrics, epochs []uint64) string {
	want := map[uint64]bool{}
	for _, e := range epochs {
		want[e] = true
	}
	var b strings.Builder
	for i, tel := range tels {
		fr := tel.Flight()
		if fr == nil {
			fmt.Fprintf(&b, "node %d: no flight recorder\n", i)
			continue
		}
		evs := fr.Events()
		var kept []telemetry.FlightEvent
		for _, ev := range evs {
			if len(want) == 0 || want[ev.Epoch] || ev.Epoch == 0 {
				kept = append(kept, ev)
			}
		}
		dropped := 0
		if len(kept) > flightDumpCap {
			dropped = len(kept) - flightDumpCap
			kept = kept[len(kept)-flightDumpCap:]
		}
		fmt.Fprintf(&b, "node %d: %d/%d events match (%d recorded total", i, len(kept)+dropped, len(evs), fr.Total())
		if dropped > 0 {
			fmt.Fprintf(&b, "; oldest %d matching elided", dropped)
		}
		b.WriteString(")\n")
		for _, ev := range kept {
			fmt.Fprintf(&b, "  %s\n", ev.String())
		}
	}
	return b.String()
}
