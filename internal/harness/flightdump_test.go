package harness

import (
	"strings"
	"testing"
	"time"

	"dledger/internal/telemetry"
)

func TestViolationEpochs(t *testing.T) {
	got := ViolationEpochs([]string{
		"agreement: node 1 and node 2 diverge at epoch 17 (position 4)",
		"liveness: epoch 3 and epoch 17 undelivered",
		"gateway: client 0@1 has 2 accepted txs uncommitted at the horizon",
	})
	want := []uint64{3, 17}
	if len(got) != len(want) {
		t.Fatalf("epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epochs = %v, want %v (dedup + sorted)", got, want)
		}
	}
	if out := ViolationEpochs([]string{"no epoch named here"}); len(out) != 0 {
		t.Fatalf("epochs = %v, want none", out)
	}
}

func TestFlightDumpFiltersAndCaps(t *testing.T) {
	tels := []*telemetry.Metrics{
		telemetry.New(telemetry.Options{FlightRing: 64}),
		nil, // a node without telemetry renders as absent, not a panic
	}
	fr := tels[0].Flight()
	fr.Record(time.Millisecond, telemetry.FlightDecide, 5, -1, 0)
	fr.Record(2*time.Millisecond, telemetry.FlightDeliver, 6, -1, 0)
	fr.Record(3*time.Millisecond, telemetry.FlightFsync, 0, -1, 1000)

	dump := FlightDump(tels, []uint64{5})
	if !strings.Contains(dump, "epoch=5") {
		t.Fatalf("dump missing the filtered epoch:\n%s", dump)
	}
	if strings.Contains(dump, "epoch=6") {
		t.Fatalf("dump leaked an unrelated epoch:\n%s", dump)
	}
	// Ambient epoch-0 I/O events (fsync) always pass the filter.
	if !strings.Contains(dump, "fsync") {
		t.Fatalf("dump dropped ambient fsync event:\n%s", dump)
	}
	if !strings.Contains(dump, "node 1: no flight recorder") {
		t.Fatalf("dump missing the telemetry-less node marker:\n%s", dump)
	}

	// Unfiltered dump keeps everything, capped per node.
	all := FlightDump(tels[:1], nil)
	for _, want := range []string{"epoch=5", "epoch=6", "fsync"} {
		if !strings.Contains(all, want) {
			t.Fatalf("unfiltered dump missing %q:\n%s", want, all)
		}
	}
}
