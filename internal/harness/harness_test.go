package harness

import (
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/trace"
)

// Short, scaled-down runs: the full paper-shaped sweeps live in the
// benchmark harness (bench_test.go, cmd/dlbench); these tests verify the
// runners work and the headline qualitative claims hold.

func TestFig2ShapeAVIDMBeatsAVIDFP(t *testing.T) {
	pts, err := RunFig2([]int{4, 16, 31}, []int{100 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.AVIDM <= 0 || p.AVIDFP <= 0 {
			t.Fatalf("degenerate cost at N=%d: %+v", p.N, p)
		}
		if p.N >= 16 && p.AVIDM >= p.AVIDFP {
			t.Fatalf("N=%d: AVID-M (%.3f|B|) should beat AVID-FP (%.3f|B|)", p.N, p.AVIDM, p.AVIDFP)
		}
		if p.AVIDM < p.LowerBound {
			t.Fatalf("N=%d: AVID-M cost %.4f below the information-theoretic bound %.4f",
				p.N, p.AVIDM, p.LowerBound)
		}
	}
	// The gap must widen with N (the whole point of Fig 2).
	gap16 := pts[1].AVIDFP / pts[1].AVIDM
	gap31 := pts[2].AVIDFP / pts[2].AVIDM
	if gap31 <= gap16 {
		t.Fatalf("AVID-FP/AVID-M cost ratio should grow with N: %.2f at 16, %.2f at 31", gap16, gap31)
	}
}

func smallGeo() []trace.City {
	// A 7-node slice of the AWS profile keeps tests fast while preserving
	// the fast/slow spread.
	return []trace.City{
		trace.AWSCities[0], // Ohio (fast)
		trace.AWSCities[2],
		trace.AWSCities[5],
		trace.AWSCities[8],
		trace.AWSCities[11],
		trace.AWSCities[13],
		trace.AWSCities[15], // Mumbai (slow)
	}
}

func TestGeoThroughputDLBeatsHB(t *testing.T) {
	p := GeoParams{Cities: smallGeo(), Scale: 1.0 / 64, Duration: 25 * time.Second, Seed: 1}

	p.Mode = core.ModeDL
	dl, err := RunGeo(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Mode = core.ModeHB
	hb, err := RunGeo(p)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Mean <= 0 || hb.Mean <= 0 {
		t.Fatalf("degenerate throughputs: DL %.2f, HB %.2f", dl.Mean, hb.Mean)
	}
	// §6.2 headline: DL substantially outperforms HB (2x in the paper; we
	// only require a clear win at this scale).
	if dl.Mean < hb.Mean*1.3 {
		t.Fatalf("DL mean %.2f MB/s not clearly above HB %.2f MB/s", dl.Mean, hb.Mean)
	}
	// Decoupling: the fastest DL node should outrun the slowest DL node
	// (nodes run at their own pace), while HB is coupled to a straggler.
	if dl.Throughput[0] <= dl.Throughput[len(dl.Throughput)-1] {
		t.Fatalf("DL fast node (%.2f) not faster than slow node (%.2f)",
			dl.Throughput[0], dl.Throughput[len(dl.Throughput)-1])
	}
}

func TestGeoHBLinkBetweenHBAndDL(t *testing.T) {
	p := GeoParams{Cities: smallGeo(), Scale: 1.0 / 64, Duration: 25 * time.Second, Seed: 2}
	means := map[core.Mode]float64{}
	for _, m := range []core.Mode{core.ModeHB, core.ModeHBLink, core.ModeDL} {
		p.Mode = m
		r, err := RunGeo(p)
		if err != nil {
			t.Fatal(err)
		}
		means[m] = r.Mean
	}
	if !(means[core.ModeHBLink] > means[core.ModeHB]) {
		t.Fatalf("HB-Link (%.2f) should beat HB (%.2f): linking stops wasted blocks",
			means[core.ModeHBLink], means[core.ModeHB])
	}
	if !(means[core.ModeDL] > means[core.ModeHBLink]) {
		t.Fatalf("DL (%.2f) should beat HB-Link (%.2f): decoupled retrieval",
			means[core.ModeDL], means[core.ModeHBLink])
	}
}

func TestProgressSeriesShape(t *testing.T) {
	p := GeoParams{Cities: smallGeo(), Mode: core.ModeDL, Scale: 1.0 / 64,
		Duration: 15 * time.Second, Seed: 3}
	r, err := RunProgress(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 7 {
		t.Fatalf("got %d series", len(r.Series))
	}
	for i, ts := range r.Series {
		if len(ts.Times) < 3 {
			t.Fatalf("node %d has only %d progress points", i, len(ts.Times))
		}
		if ts.Values[len(ts.Values)-1] <= 0 {
			t.Fatalf("node %d confirmed nothing", i)
		}
	}
}

func TestLatencyLowLoadStaysLow(t *testing.T) {
	// At genuinely low load every node should confirm within a few
	// seconds (the paper sees ~800 ms at full scale; our scaled runs pay
	// relatively more per-message fixed overhead, so the bar is looser).
	p := LatencyParams{
		Cities: smallGeo(), Mode: core.ModeDL, Scale: 1.0 / 8,
		Duration: 20 * time.Second, LoadPerNode: 0.25 * trace.MB, Seed: 4,
	}
	r, err := RunLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, p50 := range r.P50 {
		if p50 == 0 {
			t.Fatalf("node %d (%s) has no local latency samples", i, r.Names[i])
		}
		if p50 > 4*time.Second {
			t.Fatalf("node %d (%s) median latency %v too high at low load", i, r.Names[i], p50)
		}
	}
	// The well-connected site should be comfortably fast.
	if r.P50[0] > 2500*time.Millisecond {
		t.Fatalf("fast site median %v too high at low load", r.P50[0])
	}
}

func TestLatencyDLFlatterThanHBUnderLoad(t *testing.T) {
	// Fig 10: as load rises toward HB's capacity, HB's median latency
	// grows much more than DL's.
	load := 2.0 * trace.MB
	base := LatencyParams{Cities: smallGeo(), Scale: 1.0 / 8,
		Duration: 25 * time.Second, LoadPerNode: load, Seed: 5}

	base.Mode = core.ModeDL
	dl, err := RunLatency(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Mode = core.ModeHB
	hb, err := RunLatency(base)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the fast site (index 0 = Ohio-like).
	if dl.P50[0] >= hb.P50[0] {
		t.Fatalf("DL median %v should be below HB median %v under load", dl.P50[0], hb.P50[0])
	}
}

func TestSpatialVariationDecoupling(t *testing.T) {
	// Fig 11a: with bandwidth 10+0.5i, HB's throughput is flat (capped by
	// the straggler quorum) while DL's grows with node bandwidth.
	pDL := ControlledParams{N: 10, Mode: core.ModeDL, Scale: 1.0 / 64,
		Duration: 25 * time.Second, Spatial: true, Seed: 6}
	dl, err := RunControlled(pDL)
	if err != nil {
		t.Fatal(err)
	}
	pHB := pDL
	pHB.Mode = core.ModeHB
	hb, err := RunControlled(pHB)
	if err != nil {
		t.Fatal(err)
	}
	n := pDL.N
	// DL: fastest node clearly above slowest.
	if dl.Throughput[n-1] < dl.Throughput[0]*1.1 {
		t.Fatalf("DL did not decouple: node0 %.2f vs node%d %.2f",
			dl.Throughput[0], n-1, dl.Throughput[n-1])
	}
	// HB: fast nodes gated near the straggler rate — spread stays small.
	if hb.Throughput[n-1] > hb.Throughput[0]*1.35 {
		t.Fatalf("HB spread too large for coupled protocol: %.2f vs %.2f",
			hb.Throughput[0], hb.Throughput[n-1])
	}
}

func TestTemporalVariationRobustness(t *testing.T) {
	// Fig 11b: DL's throughput under Gauss-Markov variation stays close
	// to its fixed-bandwidth throughput; HB's drops.
	base := ControlledParams{N: 10, Scale: 1.0 / 64, Duration: 25 * time.Second, Seed: 7}

	run := func(mode core.Mode, temporal bool) float64 {
		p := base
		p.Mode = mode
		p.Temporal = temporal
		r, err := RunControlled(p)
		if err != nil {
			t.Fatal(err)
		}
		return r.Mean
	}
	dlFixed := run(core.ModeDL, false)
	dlVar := run(core.ModeDL, true)
	hbFixed := run(core.ModeHB, false)
	hbVar := run(core.ModeHB, true)

	if dlVar < dlFixed*0.85 {
		t.Fatalf("DL lost %.0f%% under temporal variation; paper says ~none",
			100*(1-dlVar/dlFixed))
	}
	hbDrop := 1 - hbVar/hbFixed
	dlDrop := 1 - dlVar/dlFixed
	if hbDrop <= dlDrop {
		t.Fatalf("HB drop (%.1f%%) should exceed DL drop (%.1f%%)", 100*hbDrop, 100*dlDrop)
	}
}

func TestScalabilityRunnerAndDispersalFraction(t *testing.T) {
	small, err := RunScalability(ScaleParams{N: 7, BlockBytes: 500 << 10,
		Scale: 1.0 / 64, Duration: 20 * time.Second, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if small.Throughput <= 0 {
		t.Fatal("no throughput in scalability run")
	}
	if small.DispersalFraction <= 0 || small.DispersalFraction >= 1 {
		t.Fatalf("dispersal fraction %.3f out of range", small.DispersalFraction)
	}
	// Fig 13: larger blocks amortize VID/BA overhead, shrinking the
	// dispersal fraction.
	big, err := RunScalability(ScaleParams{N: 7, BlockBytes: 2 << 20,
		Scale: 1.0 / 64, Duration: 20 * time.Second, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if big.DispersalFraction >= small.DispersalFraction {
		t.Fatalf("dispersal fraction should fall with block size: %.3f (500K) vs %.3f (2M)",
			small.DispersalFraction, big.DispersalFraction)
	}
}

func TestDLCoupledStillBeatsHB(t *testing.T) {
	// §6.2: DL-Coupled retains most of DL's gains.
	p := GeoParams{Cities: smallGeo(), Scale: 1.0 / 64, Duration: 25 * time.Second, Seed: 9}
	p.Mode = core.ModeDLCoupled
	dlc, err := RunGeo(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Mode = core.ModeHB
	hb, err := RunGeo(p)
	if err != nil {
		t.Fatal(err)
	}
	if dlc.Mean <= hb.Mean {
		t.Fatalf("DL-Coupled (%.2f) should beat HB (%.2f)", dlc.Mean, hb.Mean)
	}
}

// TestCrashRestartScenario kills node 0 on the emulator (where messages
// to a down node are dropped, not buffered), restarts it from its store,
// and checks the recovered node rejoins, catches up and delivers a log
// that is a consistent continuation of the healthy nodes'.
func TestCrashRestartScenario(t *testing.T) {
	res, err := RunCrashRestart(CrashRestartParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreCrash == 0 {
		t.Fatal("victim delivered nothing before the crash")
	}
	if !res.Continuation {
		t.Fatalf("victim log diverges from witness at %d (pre-crash %d)", res.DivergeAt, res.PreCrash)
	}
	if !res.CaughtUp {
		t.Fatalf("victim did not catch up: victim %d blocks vs witness %d (pre-crash %d)",
			res.VictimBlocks, res.WitnessBlocks, res.PreCrash)
	}
}
