package harness

import (
	"fmt"
	"math/rand"

	"dledger/internal/avid"
	"dledger/internal/avidfp"
	"dledger/internal/wire"
)

// Fig2Point is one point of Fig 2: the mean per-node dispersal download,
// normalized by block size, for both protocols.
type Fig2Point struct {
	N          int
	BlockSize  int
	AVIDM      float64 // per-node bytes / block size
	AVIDFP     float64
	LowerBound float64 // 1/(N-2f): each node must hold its share
}

// avidmDispersalCost runs one AVID-M dispersal in-process and returns the
// bytes each server downloads, mirroring avidfp.DispersalCost so the
// Fig 2 comparison measures both protocols identically.
func avidmDispersalCost(p avid.Params, block []byte) ([]int64, error) {
	servers := make([]*avid.Server, p.N)
	for i := range servers {
		servers[i] = avid.NewServer(p, i)
	}
	recv := make([]int64, p.N)

	type qmsg struct {
		from, to int
		msg      wire.Msg
	}
	var queue []qmsg
	chunks, _, err := avid.Disperse(p, block)
	if err != nil {
		return nil, err
	}
	// The dispersing client is external (the AVID model), so every server
	// pays for its chunk download; this matches avidfp.DispersalCost.
	const clientID = -2
	for i, c := range chunks {
		queue = append(queue, qmsg{clientID, i, c})
	}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if m.from != m.to {
			env := wire.Envelope{From: m.from, Epoch: 1, Proposer: clientID, Payload: m.msg}
			recv[m.to] += int64(env.WireSize())
		}
		outs, _ := servers[m.to].Handle(m.from, m.msg)
		for _, s := range outs {
			if s.To == wire.Broadcast {
				for to := range servers {
					queue = append(queue, qmsg{m.to, to, s.Msg})
				}
			} else {
				queue = append(queue, qmsg{m.to, s.To, s.Msg})
			}
		}
	}
	for i, s := range servers {
		if done, _ := s.Completed(); !done {
			return nil, fmt.Errorf("harness: server %d did not complete", i)
		}
	}
	return recv, nil
}

// RunFig2 measures per-node dispersal communication cost for AVID-M and
// AVID-FP across cluster sizes and block sizes (Fig 2 of the paper).
// Cluster sizes use N = 3f+1 with the largest f fitting N.
func RunFig2(clusterSizes []int, blockSizes []int) ([]Fig2Point, error) {
	var out []Fig2Point
	rng := rand.New(rand.NewSource(2))
	for _, bs := range blockSizes {
		block := make([]byte, bs)
		rng.Read(block)
		for _, n := range clusterSizes {
			f := (n - 1) / 3
			pm, err := avid.NewParams(n, f)
			if err != nil {
				return nil, err
			}
			pf, err := avidfp.NewParams(n, f)
			if err != nil {
				return nil, err
			}
			mcost, err := avidmDispersalCost(pm, block)
			if err != nil {
				return nil, err
			}
			fcost, err := avidfp.DispersalCost(pf, block)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig2Point{
				N:          n,
				BlockSize:  bs,
				AVIDM:      meanInt64(mcost) / float64(bs),
				AVIDFP:     meanInt64(fcost) / float64(bs),
				LowerBound: 1 / float64(n-2*f),
			})
		}
	}
	return out, nil
}

func meanInt64(xs []int64) float64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
