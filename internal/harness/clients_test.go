package harness

import (
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/trace"
)

func clientClusterOpts(n int, seed int64) ClusterOptions {
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(4 * trace.MB)
	}
	return ClusterOptions{
		Core: core.Config{N: n, F: (n - 1) / 3, Mode: core.ModeDL,
			CoinSecret: []byte("client traffic test")},
		Replica:    replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:     traces,
		TxSize:     250,
		Clients:    2,
		ClientRate: 30 << 10,
		ClientStop: 8 * time.Second,
		Durable:    true,
		Seed:       seed,
	}
}

// TestClientTrafficCleanRun drives an emulated cluster purely from
// gateway clients: every accepted transaction must commit with a
// verifying proof before the horizon, and all whole-cluster invariants
// must hold over the client-generated traffic.
func TestClientTrafficCleanRun(t *testing.T) {
	c, err := NewCluster(clientClusterOpts(4, 11))
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLogRecorder(c)
	c.Start()
	c.Run(15 * time.Second)

	honest := []int{0, 1, 2, 3}
	honestMask := []bool{true, true, true, true}
	var violations []string
	violations = append(violations, CheckPrefixAgreement(lr.Logs(), honest)...)
	for _, i := range honest {
		violations = append(violations, CheckNoDuplicates(i, lr.Log(i))...)
		violations = append(violations, lr.CheckTxValidity(i, 4, honestMask)...)
		violations = append(violations, lr.CheckNoDuplicateTxs(i, honestMask)...)
	}
	for _, v := range violations {
		t.Error(v)
	}

	total := 0
	for _, rep := range c.ClientReports() {
		if rep.VerifyFailures > 0 {
			t.Errorf("client %d@%d: %d proof verification failures", rep.Client, rep.Node, rep.VerifyFailures)
		}
		if rep.Outstanding > 0 {
			t.Errorf("client %d@%d: %d accepted txs never committed", rep.Client, rep.Node, rep.Outstanding)
		}
		if rep.Commits == 0 || len(rep.Latencies) == 0 {
			t.Errorf("client %d@%d observed no commits", rep.Client, rep.Node)
		}
		total += rep.Commits
	}
	if total == 0 {
		t.Fatal("no client traffic flowed")
	}
}

// TestClientTrafficCrashRestart crash-restarts a node mid-run while its
// gateway clients keep submitting: resubmission after the restart plus
// WAL-recovered dedup must yield exactly-once commitment for every
// accepted transaction, and the recovered receipts must verify.
func TestClientTrafficCrashRestart(t *testing.T) {
	opts := clientClusterOpts(4, 23)
	opts.ClientStop = 14 * time.Second
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLogRecorder(c)
	c.Start()
	var restartErr error
	c.Sim.After(4*time.Second, func() { c.Crash(0) })
	c.Sim.After(8*time.Second, func() {
		if err := c.Restart(0, lr.Hook(0)); err != nil {
			restartErr = err
		}
	})
	c.Run(25 * time.Second)
	if restartErr != nil {
		t.Fatal(restartErr)
	}

	honestMask := []bool{true, true, true, true}
	var violations []string
	violations = append(violations, CheckPrefixAgreement(lr.Logs(), []int{0, 1, 2, 3})...)
	for i := 0; i < 4; i++ {
		violations = append(violations, CheckNoDuplicates(i, lr.Log(i))...)
		// The exactly-once check is the point: post-restart resubmission
		// must never double-commit a client transaction.
		violations = append(violations, lr.CheckNoDuplicateTxs(i, honestMask)...)
	}
	for _, v := range violations {
		t.Error(v)
	}

	resubmits := 0
	for _, rep := range c.ClientReports() {
		resubmits += rep.Resubmitted
		if rep.VerifyFailures > 0 {
			t.Errorf("client %d@%d: %d verification failures", rep.Client, rep.Node, rep.VerifyFailures)
		}
		if rep.Outstanding > 0 {
			t.Errorf("client %d@%d: %d accepted txs never committed", rep.Client, rep.Node, rep.Outstanding)
		}
	}
	if resubmits == 0 {
		t.Error("no client ever resubmitted — the restart path was not exercised")
	}
}

// TestClientTrafficOverload pins a tiny mempool budget under sustained
// client load: over-capacity rejections (with backoff-and-retry on the
// client side) keep the backlog bounded, and every accepted transaction
// still commits.
func TestClientTrafficOverload(t *testing.T) {
	opts := clientClusterOpts(4, 37)
	opts.Replica.MempoolBytes = 2 << 10
	opts.ClientRate = 120 << 10 // well past what 2 KB of queue absorbs
	opts.ClientStop = 6 * time.Second
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	checks := 0
	var overBudget bool
	c.Sim.After(time.Second, func() {
		var probe func()
		probe = func() {
			for _, r := range c.Replicas {
				if r.PendingBytes() > 2<<10 {
					overBudget = true
				}
			}
			checks++
			if checks < 40 {
				c.Sim.After(200*time.Millisecond, probe)
			}
		}
		probe()
	})
	c.Run(20 * time.Second)

	if overBudget {
		t.Error("mempool grew past its byte budget under overload")
	}
	busy, accepted, outstanding := 0, 0, 0
	for _, rep := range c.ClientReports() {
		busy += rep.RejectedBusy
		accepted += rep.Accepted
		outstanding += rep.Outstanding
	}
	if busy == 0 {
		t.Error("overload never produced an over-capacity rejection")
	}
	if accepted == 0 {
		t.Error("admission rejected everything")
	}
	if outstanding > 0 {
		t.Errorf("%d accepted txs never committed", outstanding)
	}
	for i := range c.Replicas {
		if c.Replicas[i].Stats.RejectedSubmissions == 0 {
			t.Errorf("node %d counted no rejected submissions", i)
		}
	}
}
