package harness

// Vote-consistency observation: the whole-cluster invariant behind BA
// vote persistence. MMR binary agreement is safe only while no correct
// node sends two different Aux votes for one round (or two different
// Terms for one instance) — that is precisely what a crash-restart
// without durable votes could produce, with the node's two incarnations
// disagreeing. The VoteRecorder taps honest engines at the Action
// boundary (the same seam chaos's Byzantine wrappers use, here purely
// observing) and records every Aux/Term that reaches the wire, ACROSS
// restarts; Check reports any honest node that ever contradicted
// itself. With WAL-backed vote restore this can never fire; on the
// pre-vote-persistence code a crash-mid-round schedule fires it as soon
// as the adversarial window is hit.

import (
	"fmt"
	"sort"

	"dledger/internal/core"
	"dledger/internal/wire"
)

// VoteRecorder accumulates the distinct Aux/Term values each honest
// node put on the wire per BA instance (and round). All engines run on
// the emulator's single goroutine, so no locking is needed.
type VoteRecorder struct {
	aux  map[voteKey]map[bool]bool
	term map[voteKey]map[bool]bool
}

type voteKey struct {
	node     int
	epoch    uint64
	proposer int
	round    uint32 // 0 for Term
}

// NewVoteRecorder builds an empty recorder.
func NewVoteRecorder() *VoteRecorder {
	return &VoteRecorder{
		aux:  map[voteKey]map[bool]bool{},
		term: map[voteKey]map[bool]bool{},
	}
}

// Attach installs the observing tap on one node's engine. Call it for
// every honest node at cluster build, and again for each new engine
// incarnation (restart, join) — the cross-incarnation record is the
// point. Do not attach to Byzantine nodes: their wrapper owns the tap,
// and they are allowed to lie.
func (v *VoteRecorder) Attach(eng *core.Engine, node int) {
	eng.SetActionTap(func(actions []core.Action) []core.Action {
		for _, a := range actions {
			s, ok := a.(core.SendAction)
			if !ok {
				continue
			}
			switch m := s.Env.Payload.(type) {
			case wire.Aux:
				v.record(v.aux, voteKey{node, s.Env.Epoch, s.Env.Proposer, m.Round}, m.Value)
			case wire.Term:
				v.record(v.term, voteKey{node, s.Env.Epoch, s.Env.Proposer, 0}, m.Value)
			}
		}
		return actions
	})
}

func (v *VoteRecorder) record(m map[voteKey]map[bool]bool, k voteKey, val bool) {
	set := m[k]
	if set == nil {
		set = map[bool]bool{}
		m[k] = set
	}
	set[val] = true
}

// Check returns one violation per (node, instance, round) whose wire
// history contains contradictory votes. BVal is deliberately not
// checked: echoing both values in a round is legal MMR behaviour (the
// f+1 echo rule), only Aux and Term are one-shot.
func (v *VoteRecorder) Check() []string {
	var out []string
	collect := func(m map[voteKey]map[bool]bool, what string) {
		var keys []voteKey
		for k, set := range m {
			if len(set) > 1 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].node != keys[b].node {
				return keys[a].node < keys[b].node
			}
			if keys[a].epoch != keys[b].epoch {
				return keys[a].epoch < keys[b].epoch
			}
			if keys[a].proposer != keys[b].proposer {
				return keys[a].proposer < keys[b].proposer
			}
			return keys[a].round < keys[b].round
		})
		for _, k := range keys {
			out = append(out, fmt.Sprintf(
				"vote equivocation: node %d sent both %s values for BA[%d][%d] round %d",
				k.node, what, k.epoch, k.proposer, k.round))
		}
	}
	collect(v.aux, "Aux")
	collect(v.term, "Term")
	return out
}
