package harness

// Crash-restart experiment: the workload class the durable store opens
// up. One node of an emulated cluster is killed mid-run and rebooted
// from its surviving store; the experiment measures whether it rejoins,
// whether its delivery log is a consistent continuation, and how far it
// catches back up. Unlike the TCP transport — whose peers buffer
// outbound frames while a peer is down — the emulator drops every
// message addressed to a crashed node, so this scenario exercises the
// full recovery path: WAL replay, chunk-store restoration, the status
// catch-up protocol and re-served retrievals.

import (
	"fmt"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/trace"
)

// CrashRestartParams configures RunCrashRestart.
type CrashRestartParams struct {
	// Victim is the node to kill (default 0).
	Victim int
	// CrashAt and RestartAt bound the outage window (defaults 8s and
	// 16s); Duration is the horizon (default 30s).
	CrashAt   time.Duration
	RestartAt time.Duration
	Duration  time.Duration
	// Rate is each node's egress/ingress bandwidth in bytes/second
	// (default 2 MB/s); LoadPerNode the offered load (default 50 KB/s).
	Rate        float64
	LoadPerNode float64
	Seed        int64
}

func (p *CrashRestartParams) defaults() {
	if p.CrashAt == 0 {
		p.CrashAt = 8 * time.Second
	}
	if p.RestartAt == 0 {
		p.RestartAt = 16 * time.Second
	}
	if p.Duration == 0 {
		p.Duration = 30 * time.Second
	}
	if p.Rate == 0 {
		p.Rate = 2 * trace.MB
	}
	if p.LoadPerNode == 0 {
		p.LoadPerNode = 50 << 10
	}
}

// CrashRestartResult reports the outcome.
type CrashRestartResult struct {
	// PreCrash is the victim's delivered-block count at the crash.
	PreCrash int
	// VictimBlocks and WitnessBlocks are the final delivered-block
	// counts of the victim and of a never-crashed node.
	VictimBlocks, WitnessBlocks int
	// Continuation is true when the victim's full log (pre-crash plus
	// post-restart) agrees with the witness's log over their common
	// prefix: nothing re-delivered, nothing skipped, same order. (Either
	// node may be ahead of the other — DL decouples delivery rates.)
	Continuation bool
	// DivergeAt is the first mismatching log position (-1 if none).
	DivergeAt int
	// CaughtUp is true when the victim resumed delivering after the
	// restart and closed most of the gap to the witness.
	CaughtUp bool
}

type logEntry struct {
	epoch    uint64
	proposer int
}

// RunCrashRestart executes the scenario on the deterministic emulator.
func RunCrashRestart(p CrashRestartParams) (*CrashRestartResult, error) {
	p.defaults()
	const n = 4
	if p.Victim < 0 || p.Victim >= n {
		return nil, fmt.Errorf("harness: victim %d out of range", p.Victim)
	}
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(p.Rate)
	}
	c, err := NewCluster(ClusterOptions{
		Core: core.Config{N: n, F: 1, Mode: core.ModeDL,
			CoinSecret: []byte("crash restart experiment")},
		Replica: replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:  traces,
		TxSize:  250,
		// The built-in Poisson workload resolves the node's *current*
		// incarnation per submission and drops while it is down — a
		// crashed node's clients are simply unlucky.
		LoadPerNode: p.LoadPerNode,
		Durable:     true,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}

	logs := make([][]logEntry, n)
	hook := func(i int) func(replica.Delivery) {
		return func(d replica.Delivery) {
			logs[i] = append(logs[i], logEntry{epoch: d.Epoch, proposer: d.Proposer})
		}
	}
	for i := 0; i < n; i++ {
		c.SetDeliverHook(i, hook(i))
	}
	c.Start()

	res := &CrashRestartResult{DivergeAt: -1}
	var restartErr error
	c.Sim.After(p.CrashAt, func() {
		c.Crash(p.Victim)
		res.PreCrash = len(logs[p.Victim])
	})
	c.Sim.After(p.RestartAt, func() {
		if err := c.Restart(p.Victim, hook(p.Victim)); err != nil {
			restartErr = err
		}
	})
	c.Run(p.Duration)
	if restartErr != nil {
		return nil, restartErr
	}

	witness := (p.Victim + 1) % n
	res.VictimBlocks = len(logs[p.Victim])
	res.WitnessBlocks = len(logs[witness])
	res.Continuation = true
	common := res.VictimBlocks
	if res.WitnessBlocks < common {
		common = res.WitnessBlocks
	}
	for k := 0; k < common; k++ {
		if logs[witness][k] != logs[p.Victim][k] {
			res.Continuation = false
			res.DivergeAt = k
			break
		}
	}
	// "Caught up": delivering again after the restart, within an epoch's
	// worth of the witness.
	caughtTo := c.Replicas[p.Victim].Stats.EpochsDelivered
	witnessTo := c.Replicas[witness].Stats.EpochsDelivered
	res.CaughtUp = res.VictimBlocks > res.PreCrash && caughtTo+2 >= witnessTo
	return res, nil
}
