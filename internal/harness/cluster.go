// Package harness assembles full DispersedLedger clusters on the network
// emulator and runs the paper's experiments. Every figure and table of
// the evaluation (§6 and appendix A) has a runner here; cmd/dlbench and
// bench_test.go print their outputs in the paper's shape.
package harness

import (
	"fmt"
	"time"

	"dledger/internal/core"
	"dledger/internal/gateway"
	"dledger/internal/replica"
	"dledger/internal/simnet"
	"dledger/internal/store"
	"dledger/internal/telemetry"
	"dledger/internal/trace"
	"dledger/internal/wire"
	"dledger/internal/workload"
)

// ClusterOptions configures an emulated cluster run.
type ClusterOptions struct {
	Core    core.Config
	Replica replica.Params

	// Egress/Ingress bandwidth traces per node (Ingress nil = same as
	// egress). Delay nil = flat 100 ms one-way, the paper's controlled
	// setting.
	Egress  []trace.Trace
	Ingress []trace.Trace
	Delay   func(from, to int) time.Duration
	// PriorityWeight is the dispersal:retrieval bandwidth ratio T (§5).
	// Zero = 30.
	PriorityWeight float64

	// Workload: TxSize bytes per transaction; LoadPerNode is the offered
	// Poisson load per node in bytes/second. InfiniteBacklog keeps every
	// mempool saturated instead (the paper's throughput methodology).
	TxSize          int
	LoadPerNode     float64
	InfiniteBacklog bool

	// Durable backs every node with an in-memory store so Crash/Restart
	// work. Off by default: the paper-figure experiments measure the
	// protocol, not the persistence layer.
	Durable bool

	// Telemetry gives every node its own telemetry bundle
	// (Cluster.Tels), enabling epoch-lifecycle tracing and the metrics
	// registry under the emulated clock. Counters and timelines are
	// per-incarnation: Crash/Restart and AddNode install a fresh bundle,
	// matching a real process restart. The tracer ring is sized so a
	// chaos-length run retains every delivered epoch's timeline.
	Telemetry bool

	// Clients attaches this many emulated gateway clients to every node
	// (via a gateway.Hub per node — the library form of the TCP front
	// door), implying content-hash dedup on every replica. Client
	// behaviour mirrors package dlclient: Poisson submissions at
	// ClientRate bytes/s each, retry-after backoff on over-capacity
	// rejections, resubmission of uncommitted transactions after the
	// node restarts, and verification of every streamed commit proof.
	Clients int
	// ClientRate is each client's offered load (default 20 KB/s).
	ClientRate float64
	// ClientRateLimit, when positive, enables the gateways' per-client
	// admission token bucket at this many bytes/second (metered on
	// simulated time).
	ClientRateLimit float64
	// ClientStop ends client submissions at this simulated instant so a
	// run's tail can drain (0 = keep submitting to the horizon).
	ClientStop time.Duration

	Seed int64
}

// Cluster is a running emulated deployment. Each node persists through
// an in-memory store, so the harness can crash a node (drop it from the
// network mid-run) and later restart it from its durable state — the
// emulated analogue of kill -9 plus a reboot from the datadir.
type Cluster struct {
	Sim      *simnet.Sim
	Net      *simnet.Network
	Replicas []*replica.Replica
	Stores   []*store.MemStore
	// Hubs are the per-node client gateways (nil without opts.Clients;
	// see ClusterOptions.Clients).
	Hubs []*gateway.Hub
	// Tels are the per-node telemetry bundles (nil without
	// opts.Telemetry). A restarted or joined node gets a fresh bundle,
	// so each entry describes the node's current incarnation only.
	Tels    []*telemetry.Metrics
	clients []*SimClient
	alive   []*bool
	held    map[int]bool
	// userHook is the externally-installed delivery observer of each
	// node (LogRecorder, experiment collectors); the replica's OnDeliver
	// dispatches to the gateway hub first, then to it. It survives
	// Crash/Restart re-wiring.
	userHook []func(replica.Delivery)
	opts     ClusterOptions
}

// hubExec runs gateway submissions against a node's CURRENT replica
// incarnation — the emulator is single-threaded, so inline execution is
// the loop-posting of the real transports.
type hubExec struct {
	c *Cluster
	i int
}

func (e hubExec) Exec(fn func(*replica.Replica)) { fn(e.c.Replicas[e.i]) }

type simCtx struct {
	sim   *simnet.Sim
	net   *simnet.Network
	self  int
	alive *bool
}

func (c *simCtx) Now() time.Duration { return c.sim.Now() }
func (c *simCtx) Send(to int, env wire.Envelope, prio wire.Priority, stream uint64) {
	if !*c.alive {
		return // a crashed incarnation's leftover timers send nothing
	}
	c.net.Send(c.self, to, env, prio, stream)
}
func (c *simCtx) After(d time.Duration, fn func()) { c.sim.After(d, fn) }
func (c *simCtx) Unsend(to int, epoch uint64, proposer int) {
	if !*c.alive {
		return
	}
	c.net.Unsend(c.self, to, epoch, proposer)
}

// harnessTraceRing sizes the per-node tracer ring: large enough that a
// chaos-length run (minutes of simulated time at a 100 ms batch cadence)
// keeps every delivered epoch's timeline for invariant checking.
const harnessTraceRing = 8192

// harnessFlightRing sizes the per-node flight recorder. Chaos runs lean
// on the tail of the journal — the events surrounding the violation —
// so the ring only needs to cover the last few seconds of protocol
// activity, not the whole run.
const harnessFlightRing = 16384

// nodeParams returns the replica parameters for (re)building node i,
// minting a fresh telemetry bundle for the new incarnation when
// telemetry is on.
func (c *Cluster) nodeParams(i int) replica.Params {
	params := c.opts.Replica
	if c.opts.Telemetry {
		c.Tels[i] = telemetry.New(telemetry.Options{TraceRing: harnessTraceRing, FlightRing: harnessFlightRing})
		params.Telemetry = c.Tels[i]
	}
	return params
}

// NewCluster builds the emulated cluster (not yet started).
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Core.CoinSecret == nil {
		opts.Core.CoinSecret = []byte("harness shared coin secret")
	}
	if opts.TxSize == 0 {
		opts.TxSize = 250
	}
	if opts.Clients > 0 {
		// Gateway clients need content-hash dedup for idempotent
		// resubmission (and hashes in Deliveries for commit proofs).
		opts.Replica.ClientDedup = true
		if opts.ClientRate == 0 {
			opts.ClientRate = 20 << 10
		}
	}
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, simnet.Config{
		N:              opts.Core.N,
		Delay:          opts.Delay,
		Egress:         opts.Egress,
		Ingress:        opts.Ingress,
		PriorityWeight: opts.PriorityWeight,
	})
	c := &Cluster{Sim: sim, Net: net, opts: opts}
	if opts.Telemetry {
		c.Tels = make([]*telemetry.Metrics, opts.Core.N)
	}
	for i := 0; i < opts.Core.N; i++ {
		var st store.Store = store.NewNoop()
		var mem *store.MemStore
		if opts.Durable {
			mem = store.NewMem()
			st = mem
		}
		alive := new(bool)
		*alive = true
		r, err := replica.NewWithStore(opts.Core, i, c.nodeParams(i), st,
			&simCtx{sim: sim, net: net, self: i, alive: alive})
		if err != nil {
			return nil, err
		}
		i := i
		net.SetHandler(i, func(env wire.Envelope) { r.OnEnvelope(env) })
		c.Replicas = append(c.Replicas, r)
		c.Stores = append(c.Stores, mem)
		c.alive = append(c.alive, alive)
	}
	c.userHook = make([]func(replica.Delivery), opts.Core.N)
	if opts.Clients > 0 {
		c.Hubs = make([]*gateway.Hub, opts.Core.N)
		for i := range c.Hubs {
			c.Hubs[i] = gateway.NewHub(hubExec{c, i}, gateway.Options{
				N: opts.Core.N, F: opts.Core.F,
				// In simulated time a real 250 ms hint would stall the
				// clients pointlessly; one batch delay is the natural
				// backoff quantum.
				RetryAfter:    opts.Replica.BatchDelay,
				RatePerClient: opts.ClientRateLimit,
				Now:           sim.Now,
			})
		}
	}
	for i := 0; i < opts.Core.N; i++ {
		c.installDispatch(i)
	}
	return c, nil
}

// installDispatch wires a node's replica.OnDeliver to the gateway hub
// (when present) followed by the user hook, and points the hub at the
// incarnation's journey collector. Looked up dynamically so
// SetDeliverHook and Restart compose.
func (c *Cluster) installDispatch(i int) {
	if c.Hubs != nil {
		c.Hubs[i].SetJourneys(c.Replicas[i].Journeys())
	}
	c.Replicas[i].OnDeliver = func(d replica.Delivery) {
		if c.Hubs != nil {
			c.Hubs[i].OnDeliver(d)
		}
		if fn := c.userHook[i]; fn != nil {
			fn(d)
		}
	}
}

// SetDeliverHook installs (or replaces) node i's delivery observer. The
// gateway hub, when present, always observes first.
func (c *Cluster) SetDeliverHook(i int, fn func(replica.Delivery)) {
	c.userHook[i] = fn
}

// Alive reports whether node i is currently up.
func (c *Cluster) Alive(i int) bool { return *c.alive[i] }

// Crash kills node i: its traffic is dropped in both directions from the
// current simulated instant. Its store (the "disk") survives but is
// fenced immediately, so the dead incarnation's leftover timers cannot
// persist anything after the crash instant — state the node had not
// persisted is lost, exactly as in a process kill.
func (c *Cluster) Crash(i int) {
	*c.alive[i] = false
	c.Net.SetHandler(i, func(wire.Envelope) {})
	if c.Stores[i] != nil {
		c.Stores[i] = c.Stores[i].Reopen()
	}
}

// Restart boots a fresh node i from its surviving store. Reopening
// fences the dead incarnation's handle, so its leftover timer callbacks
// cannot corrupt the state the successor recovered. onDeliver (may be
// nil) is installed before Start, because recovery can deliver blocks
// synchronously during Start — a hook installed afterward would miss
// them.
func (c *Cluster) Restart(i int, onDeliver func(replica.Delivery)) error {
	if c.Stores[i] == nil {
		return fmt.Errorf("harness: Restart(%d) requires ClusterOptions.Durable", i)
	}
	c.Stores[i] = c.Stores[i].Reopen()
	alive := new(bool)
	*alive = true
	r, err := replica.NewWithStore(c.opts.Core, i, c.nodeParams(i), c.Stores[i],
		&simCtx{sim: c.Sim, net: c.Net, self: i, alive: alive})
	if err != nil {
		return err
	}
	c.userHook[i] = onDeliver
	c.Replicas[i] = r
	c.alive[i] = alive
	c.installDispatch(i)
	c.Net.SetHandler(i, func(env wire.Envelope) { r.OnEnvelope(env) })
	r.Start()
	// Gateway clients of a restarted node resubmit their uncommitted
	// transactions, exactly as dlclient does on reconnect.
	for _, cl := range c.clients {
		if cl.node == i {
			cl.resubmit()
		}
	}
	return nil
}

// Hold excludes node i from the initial boot: it neither starts nor
// receives traffic until AddNode spawns it into the running cluster as
// a brand-new member. Call before Start.
func (c *Cluster) Hold(i int) {
	if c.held == nil {
		c.held = map[int]bool{}
	}
	c.held[i] = true
	*c.alive[i] = false
	c.Net.SetHandler(i, func(wire.Envelope) {})
}

// AddNode boots a Held node as a brand-new member of the running
// cluster: an empty store, and — with Core.StateSync — a checkpoint
// bootstrap from its peers before it participates (the emulated
// counterpart of `dlnode -join`). The membership slot must have been
// part of the cluster's configuration from the start; DispersedLedger's
// membership is static, so "a fresh node" means a configured member
// whose first boot happens mid-run.
func (c *Cluster) AddNode(i int, onDeliver func(replica.Delivery)) error {
	if !c.held[i] {
		return fmt.Errorf("harness: AddNode(%d) requires a prior Hold(%d)", i, i)
	}
	if !c.opts.Core.StateSync {
		// Without checkpoint transfer a fresh member can never reach the
		// cluster's log; fail loudly (as the chaos planner does) instead
		// of booting a node that silently wedges.
		return fmt.Errorf("harness: AddNode(%d) requires Core.StateSync", i)
	}
	delete(c.held, i)
	cfg := c.opts.Core
	cfg.JoinSync = true
	var st store.Store = store.NewNoop()
	if c.opts.Durable {
		c.Stores[i] = store.NewMem()
		st = c.Stores[i]
	}
	alive := new(bool)
	*alive = true
	r, err := replica.NewWithStore(cfg, i, c.nodeParams(i), st,
		&simCtx{sim: c.Sim, net: c.Net, self: i, alive: alive})
	if err != nil {
		return err
	}
	c.userHook[i] = onDeliver
	c.Replicas[i] = r
	c.alive[i] = alive
	c.installDispatch(i)
	c.Net.SetHandler(i, func(env wire.Envelope) { r.OnEnvelope(env) })
	r.Start()
	for _, cl := range c.clients {
		if cl.node == i {
			cl.resubmit()
		}
	}
	return nil
}

// Start boots all replicas and installs the workload.
func (c *Cluster) Start() {
	for i, r := range c.Replicas {
		if c.held[i] {
			continue
		}
		r.Start()
	}
	if c.opts.InfiniteBacklog {
		c.installBacklog()
	} else if c.opts.LoadPerNode > 0 {
		c.installPoisson()
	}
	if c.opts.Clients > 0 {
		c.installClients()
	}
}

// installBacklog keeps every mempool saturated so proposals are never
// demand-limited — the paper's throughput measurement methodology
// ("generate a high load ... to create an infinitely-backlogged system").
func (c *Cluster) installBacklog() {
	target := 4 * c.opts.Replica.BatchBytes
	if c.opts.Replica.FixedBlockBytes > 0 {
		target = 4 * c.opts.Replica.FixedBlockBytes
	}
	if target == 0 {
		target = 4 * (150 << 10)
	}
	var seq uint32
	for i := range c.Replicas {
		i := i
		var refill func()
		refill = func() {
			// Look the replica up at refill time (not capture it): after a
			// Crash/Restart the slot holds a new incarnation, and the
			// workload must follow it rather than feed the dead one.
			if c.Alive(i) {
				r := c.Replicas[i]
				for r.PendingBytes() < target {
					seq++
					r.Submit(workload.Make(i, seq, c.Sim.Now(), c.opts.TxSize))
				}
			}
			c.Sim.After(20*time.Millisecond, refill)
		}
		refill()
	}
}

// installPoisson starts the per-node Poisson generators of §6.1. Each
// submission resolves the node's current incarnation and is dropped
// while the node is down — a crashed node's clients are simply unlucky.
func (c *Cluster) installPoisson() {
	for i := range c.Replicas {
		i := i
		gen := workload.NewGenerator(i, c.opts.TxSize, c.opts.LoadPerNode, c.opts.Seed+int64(i)*7919)
		var arm func()
		arm = func() {
			tx, gap := gen.Next(c.Sim.Now())
			c.Sim.After(gap, func() {
				if c.Alive(i) {
					c.Replicas[i].Submit(tx)
				}
				arm()
			})
		}
		arm()
	}
}

// Run advances simulated time to the horizon.
func (c *Cluster) Run(horizon time.Duration) {
	c.Sim.Run(horizon)
}

// Throughput returns node i's confirmed-payload rate (bytes/second)
// between warmup and end, the paper's per-server throughput metric.
func (c *Cluster) Throughput(i int, warmup, end time.Duration) float64 {
	return c.Replicas[i].Stats.Progress.Rate(warmup, end)
}

// DispersalFraction returns the ratio of dispersal-class bytes to total
// bytes a node must move per epoch (Fig 13's metric). Both classes are
// normalized per epoch — dispersal bytes per epoch whose dispersal phase
// finished, retrieval bytes per epoch fully delivered — because under
// infinite backlog the retrieval pipeline lags the dispersal pipeline by
// design, and raw byte totals at the end of a finite run would
// undercount retrieval for exactly the configurations with the largest
// backlog.
func (c *Cluster) DispersalFraction(i int) float64 {
	d, r := c.Net.BytesReceived(i)
	st := &c.Replicas[i].Stats
	if st.EpochsDecided == 0 || st.EpochsDelivered == 0 || d+r == 0 {
		return 0
	}
	dPer := float64(d) / float64(st.EpochsDecided)
	rPer := float64(r) / float64(st.EpochsDelivered)
	return dPer / (dPer + rPer)
}
