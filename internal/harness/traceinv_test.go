package harness

import (
	"strings"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/trace"
)

// TestTraceCompletenessCleanRun drives a healthy emulated cluster with
// telemetry on and asserts the trace invariant holds on every node —
// and that the checker actually has material (spans, stage panel).
func TestTraceCompletenessCleanRun(t *testing.T) {
	const n = 4
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(2 * trace.MB)
	}
	c, err := NewCluster(ClusterOptions{
		Core:        core.Config{N: n, F: 1, Mode: core.ModeDL, CoinSecret: []byte("trace inv test")},
		Replica:     replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:      traces,
		TxSize:      250,
		LoadPerNode: 100 << 10,
		Telemetry:   true,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLogRecorder(c)
	c.Start()
	c.Run(20 * time.Second)

	for i := 0; i < n; i++ {
		if len(lr.Log(i)) == 0 {
			t.Fatalf("node %d delivered nothing", i)
		}
		if got := len(c.Tels[i].Trace().Delivered()); got == 0 {
			t.Fatalf("node %d has no delivered timelines", i)
		}
		if v := CheckTraceCompleteness(i, c.Tels[i], lr.Log(i)); len(v) != 0 {
			t.Fatalf("node %d trace violations: %v", i, v)
		}
	}
	panel := stagePanel(c)
	for _, seg := range []string{"ba", "e2e"} {
		if panel[seg].Count == 0 || panel[seg].P95Ms <= 0 {
			t.Fatalf("stage panel missing %q: %+v", seg, panel)
		}
	}
}

// TestTraceCompletenessDetects feeds the checker a log the telemetry
// never saw and expects violations, including the nil-bundle case.
func TestTraceCompletenessDetects(t *testing.T) {
	if v := CheckTraceCompleteness(0, nil, nil); len(v) != 1 || !strings.Contains(v[0], "no telemetry bundle") {
		t.Fatalf("nil bundle not flagged: %v", v)
	}
	const n = 4
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(2 * trace.MB)
	}
	c, err := NewCluster(ClusterOptions{
		Core:      core.Config{N: n, F: 1, Mode: core.ModeDL, CoinSecret: []byte("trace inv test")},
		Replica:   replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:    traces,
		TxSize:    250,
		Telemetry: true,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fabricated log claiming epochs 1 and 2 delivered blocks: epoch 1
	// must be flagged (no timeline); epoch 2, the max epoch, is the
	// horizon-cut exemption; the counters must be flagged too.
	log := []LogEntry{
		{Epoch: 1, Proposer: 0, TxCount: 3},
		{Epoch: 2, Proposer: 1, TxCount: 2},
	}
	v := CheckTraceCompleteness(0, c.Tels[0], log)
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "epoch 1 with no timeline") {
		t.Fatalf("missing-timeline violation not raised:\n%s", joined)
	}
	if strings.Contains(joined, "epoch 2 with no timeline") {
		t.Fatalf("max-epoch exemption not applied:\n%s", joined)
	}
	if !strings.Contains(joined, "delivered blocks") || !strings.Contains(joined, "delivered txs") {
		t.Fatalf("counter reconciliation not raised:\n%s", joined)
	}
}
