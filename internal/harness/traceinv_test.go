package harness

import (
	"strings"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/telemetry"
	"dledger/internal/telemetry/txtrace"
	"dledger/internal/trace"
)

// TestTraceCompletenessCleanRun drives a healthy emulated cluster with
// telemetry on and asserts the trace invariant holds on every node —
// and that the checker actually has material (spans, stage panel).
func TestTraceCompletenessCleanRun(t *testing.T) {
	const n = 4
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(2 * trace.MB)
	}
	c, err := NewCluster(ClusterOptions{
		Core:        core.Config{N: n, F: 1, Mode: core.ModeDL, CoinSecret: []byte("trace inv test")},
		Replica:     replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:      traces,
		TxSize:      250,
		LoadPerNode: 100 << 10,
		Telemetry:   true,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLogRecorder(c)
	c.Start()
	c.Run(20 * time.Second)

	for i := 0; i < n; i++ {
		if len(lr.Log(i)) == 0 {
			t.Fatalf("node %d delivered nothing", i)
		}
		if got := len(c.Tels[i].Trace().Delivered()); got == 0 {
			t.Fatalf("node %d has no delivered timelines", i)
		}
		if v := CheckTraceCompleteness(i, c.Tels[i], c.Replicas[i].Journeys(), lr.Log(i)); len(v) != 0 {
			t.Fatalf("node %d trace violations: %v", i, v)
		}
	}
	panel := stagePanel(c)
	for _, seg := range []string{"ba", "e2e"} {
		if panel[seg].Count == 0 || panel[seg].P95Ms <= 0 {
			t.Fatalf("stage panel missing %q: %+v", seg, panel)
		}
	}
	// The journey layer must have finished at least one sampled
	// transaction somewhere in the cluster, and the phase panel must
	// carry the decomposition.
	finished := 0
	for i := 0; i < n; i++ {
		finished += len(c.Replicas[i].Journeys().Completed())
	}
	if finished == 0 {
		t.Fatal("no sampled transaction journeys completed")
	}
	phases := phasePanel(c)
	for _, ph := range []string{"mempool_wait", "ba", "deliver"} {
		if phases[ph].Count == 0 {
			t.Fatalf("phase panel missing %q: %+v", ph, phases)
		}
	}
}

// TestTraceCompletenessDetects feeds the checker a log the telemetry
// never saw and expects violations, including the nil-bundle case.
func TestTraceCompletenessDetects(t *testing.T) {
	if v := CheckTraceCompleteness(0, nil, nil, nil); len(v) != 1 || !strings.Contains(v[0], "no telemetry bundle") {
		t.Fatalf("nil bundle not flagged: %v", v)
	}
	const n = 4
	traces := make([]trace.Trace, n)
	for i := range traces {
		traces[i] = trace.Constant(2 * trace.MB)
	}
	c, err := NewCluster(ClusterOptions{
		Core:      core.Config{N: n, F: 1, Mode: core.ModeDL, CoinSecret: []byte("trace inv test")},
		Replica:   replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:    traces,
		TxSize:    250,
		Telemetry: true,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fabricated log claiming epochs 1 and 2 delivered blocks: epoch 1
	// must be flagged (no timeline); epoch 2, the max epoch, is the
	// horizon-cut exemption; the counters must be flagged too.
	log := []LogEntry{
		{Epoch: 1, Proposer: 0, TxCount: 3},
		{Epoch: 2, Proposer: 1, TxCount: 2},
	}
	v := CheckTraceCompleteness(0, c.Tels[0], c.Replicas[0].Journeys(), log)
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "epoch 1 with no timeline") {
		t.Fatalf("missing-timeline violation not raised:\n%s", joined)
	}
	if strings.Contains(joined, "epoch 2 with no timeline") {
		t.Fatalf("max-epoch exemption not applied:\n%s", joined)
	}
	if !strings.Contains(joined, "delivered blocks") || !strings.Contains(joined, "delivered txs") {
		t.Fatalf("counter reconciliation not raised:\n%s", joined)
	}
}

// TestJourneyViolationsDetect exercises the journey half of the checker
// with hand-built bad states: a finalized journey in an epoch the log
// never shows the node proposing, and a live journey stuck in an epoch
// the log already delivered.
func TestJourneyViolationsDetect(t *testing.T) {
	m := telemetry.New(telemetry.Options{})
	jour := txtrace.New(m, txtrace.Options{SampleEvery: 1})
	tx := []byte("phantom")
	jour.Submitted(tx, time.Second)
	jour.ProposedBatch([][]byte{tx}, 9, 2*time.Second)
	jour.EpochDelivered(9, 3*time.Second) // finalized in epoch 9

	stuck := []byte("stuck")
	jour.Submitted(stuck, time.Second)
	jour.ProposedBatch([][]byte{stuck}, 4, 2*time.Second) // never finalized

	log := []LogEntry{
		{Epoch: 4, Proposer: 1, TxCount: 1}, // delivered, but proposer != 0
		{Epoch: 5, Proposer: 0, TxCount: 1},
	}
	joined := strings.Join(checkJourneys(0, jour, map[uint64]bool{4: true, 5: true}, 5, log), "\n")
	if !strings.Contains(joined, "which its log never shows it proposing") {
		t.Fatalf("phantom-epoch journey not flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "stuck live in delivered epoch 4") {
		t.Fatalf("stuck journey not flagged:\n%s", joined)
	}
	if v := checkJourneys(0, nil, nil, 0, nil); v != nil {
		t.Fatalf("nil journeys must be silent, got %v", v)
	}
}
