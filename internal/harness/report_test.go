package harness

import (
	"strings"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/stats"
)

func TestFormatFig2(t *testing.T) {
	out := FormatFig2([]Fig2Point{
		{N: 16, BlockSize: 100 << 10, AVIDM: 0.18, AVIDFP: 0.35, LowerBound: 0.166},
	})
	for _, want := range []string{"AVID-M", "AVID-FP", "16", "100KB", "0.1800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatGeo(t *testing.T) {
	r := &GeoResult{
		Mode:       core.ModeDL,
		Names:      []string{"Ohio", "Mumbai"},
		Throughput: []float64{5.5, 1.25},
		Mean:       3.375,
	}
	out := FormatGeo([]*GeoResult{r})
	for _, want := range []string{"Ohio", "Mumbai", "5.50", "1.25", "MEAN", "3.38", "DL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("geo output missing %q:\n%s", want, out)
		}
	}
	if FormatGeo(nil) != "" {
		t.Fatal("empty input should render empty")
	}
}

func TestFormatProgress(t *testing.T) {
	ts := &stats.TimeSeries{}
	ts.Force(0, 0)
	ts.Force(10*time.Second, float64(1<<30))
	r := &ProgressResult{Mode: core.ModeHBLink, Names: []string{"A"}, Series: []*stats.TimeSeries{ts}}
	out := FormatProgress(r, 5*time.Second, 10*time.Second)
	if !strings.Contains(out, "HB-Link") || !strings.Contains(out, "1.000") {
		t.Fatalf("progress output wrong:\n%s", out)
	}
}

func TestFormatLatency(t *testing.T) {
	r := &LatencyResult{
		Mode: core.ModeDL, LoadPerNode: 2 << 20,
		Names: []string{"Ohio"},
		P5:    []time.Duration{500 * time.Millisecond},
		P50:   []time.Duration{800 * time.Millisecond},
		P95:   []time.Duration{1500 * time.Millisecond},
		P99:   []time.Duration{2 * time.Second},
	}
	out := FormatLatency([]*LatencyResult{r})
	for _, want := range []string{"Ohio", "800ms", "500ms", "1.5s", "2.0 MB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("latency output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatControlledAndScale(t *testing.T) {
	cr := &ControlledResult{Mode: core.ModeHB, Throughput: []float64{1, 2}, Mean: 1.5, Std: 0.5}
	out := FormatControlled("title", []*ControlledResult{cr})
	for _, want := range []string{"title", "HB", "mean", "1.50", "std", "0.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("controlled output missing %q:\n%s", want, out)
		}
	}
	sr := &ScaleResult{N: 16, BlockBytes: 1 << 20, Throughput: 3.0, DispersalFraction: 0.07}
	out = FormatScale([]*ScaleResult{sr})
	for _, want := range []string{"16", "1.0MB", "3.00", "0.0700"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scale output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHeadline(t *testing.T) {
	mk := func(mean float64) *GeoResult { return &GeoResult{Mean: mean} }
	out := FormatHeadline(mk(1), mk(1.5), mk(2), mk(1.8))
	for _, want := range []string{"DL / HB         = 2.00x", "HB-Link / HB    = 1.50x", "DL-Coupled / DL = 0.90x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("headline output missing %q:\n%s", want, out)
		}
	}
}

func TestByteSizeAndHelpers(t *testing.T) {
	cases := map[int]string{
		100:     "100B",
		2 << 10: "2KB",
		3 << 20: "3.0MB",
	}
	for n, want := range cases {
		if got := byteSize(n); got != want {
			t.Fatalf("byteSize(%d) = %q, want %q", n, got, want)
		}
	}
	if got := truncate("abcdefgh", 3); got != "abc" {
		t.Fatalf("truncate = %q", got)
	}
	if got := truncate("ab", 3); got != "ab" {
		t.Fatalf("truncate = %q", got)
	}
}
