package harness

import (
	"strings"
	"testing"

	"dledger/internal/core"
	"dledger/internal/wire"
)

// TestVoteRecorderDetectsEquivocation drives two engine incarnations of
// "the same node" through the recorder and checks the cross-incarnation
// contradiction is reported — the exact shape of a vote-less restart's
// re-vote inconsistency — while consistent re-sends stay silent.
func TestVoteRecorderDetectsEquivocation(t *testing.T) {
	vr := NewVoteRecorder()
	mk := func() *core.Engine {
		eng, err := core.NewEngine(core.Config{N: 4, F: 1, CoinSecret: []byte("s")}, 0)
		if err != nil {
			t.Fatal(err)
		}
		vr.Attach(eng, 0)
		eng.Start()
		return eng
	}
	// First incarnation: peers vouch for true in BA[1][1] round 0 — the
	// node's Aux(0,true) goes on the wire (observed through the tap).
	eng := mk()
	for _, from := range []int{1, 2, 3} {
		eng.Handle(wire.Envelope{From: from, Epoch: 1, Proposer: 1,
			Payload: wire.BVal{Round: 0, Value: true}})
	}
	if v := vr.Check(); len(v) != 0 {
		t.Fatalf("consistent votes flagged: %v", v)
	}
	// "Restart" without durable votes: a fresh engine (fresh BA state),
	// now pushed toward false.
	eng2 := mk()
	for _, from := range []int{1, 2, 3} {
		eng2.Handle(wire.Envelope{From: from, Epoch: 1, Proposer: 1,
			Payload: wire.BVal{Round: 0, Value: false}})
	}
	violations := vr.Check()
	if len(violations) != 1 || !strings.Contains(violations[0], "Aux") {
		t.Fatalf("cross-incarnation Aux equivocation not reported: %v", violations)
	}
}
