package harness

// Emulated gateway clients: the deterministic, simulator-driven
// counterpart of package dlclient. Each SimClient submits Poisson
// traffic through its node's gateway.Hub, backs off on over-capacity
// receipts (honouring the retry-after hint), verifies every streamed
// commit proof, and — after its node crash-restarts — resubmits its
// uncommitted transactions exactly as the real client library does on
// reconnect. Content-hash dedup makes those resubmissions idempotent,
// which is precisely the property the chaos runs assert: every accepted
// transaction commits exactly once, under crashes, partitions and
// Byzantine peers.

import (
	"math/rand"
	"time"

	"dledger/internal/gateway"
	"dledger/internal/mempool"
	"dledger/internal/workload"
)

// ClientReport is what one emulated client observed.
type ClientReport struct {
	Node   int
	Client int
	// Submitted counts first-time submissions; Resubmitted the
	// post-restart and backoff retries on top.
	Submitted   int
	Resubmitted int
	// Receipt outcomes.
	Accepted     int
	RejectedBusy int
	RejectedDup  int
	OtherRejects int
	// Commits counts verified commit proofs received; VerifyFailures
	// proofs that did not verify (always a bug).
	Commits        int
	VerifyFailures int
	// Outstanding is the number of accepted transactions still without a
	// commit when the report was taken.
	Outstanding int
	// Latencies are submission-to-verified-commit times.
	Latencies []time.Duration
}

// SimClient is one emulated gateway client.
type SimClient struct {
	c    *Cluster
	node int
	k    int // client index on the node
	id   uint64
	sub  *gateway.Sub
	rng  *rand.Rand
	mean time.Duration
	seq  uint32

	// outstanding tracks accepted-but-uncommitted transactions in
	// submission order (ordered for deterministic resubmission).
	order       []mempool.Hash
	outstanding map[mempool.Hash]outTx
	retryQ      [][]byte // over-capacity transactions awaiting retry
	nextReq     uint64

	Report ClientReport
}

type outTx struct {
	tx []byte
	at time.Duration
}

// installClients builds and schedules every node's clients.
func (c *Cluster) installClients() {
	txSize := c.opts.TxSize
	for i := 0; i < c.opts.Core.N; i++ {
		for k := 0; k < c.opts.Clients; k++ {
			id := uint64(i)<<16 | uint64(k) | 1<<48 // never 0 (LocalClient)
			cl := &SimClient{
				c: c, node: i, k: k, id: id,
				sub: c.Hubs[i].Subscribe(id, 1<<15),
				rng: rand.New(rand.NewSource(c.opts.Seed + int64(i)*104_729 + int64(k)*7919 + 13)),
				mean: time.Duration(float64(time.Second) /
					(c.opts.ClientRate / float64(txSize))),
				outstanding: map[mempool.Hash]outTx{},
			}
			cl.Report.Node, cl.Report.Client = i, k
			c.clients = append(c.clients, cl)
			cl.arm()
		}
	}
}

// ClientReports drains every client's commit stream once more and
// returns the final per-client reports.
func (c *Cluster) ClientReports() []ClientReport {
	out := make([]ClientReport, 0, len(c.clients))
	for _, cl := range c.clients {
		cl.drain()
		cl.Report.Outstanding = len(cl.order)
		out = append(out, cl.Report)
	}
	return out
}

// arm schedules the next submission event.
func (cl *SimClient) arm() {
	gap := time.Duration(cl.rng.ExpFloat64() * float64(cl.mean))
	cl.c.Sim.After(gap, cl.tick)
}

// tick is one client event: consume commits, retry backed-off
// transactions, submit the next one, reschedule.
func (cl *SimClient) tick() {
	cl.drain()
	now := cl.c.Sim.Now()
	stopped := cl.c.opts.ClientStop > 0 && now >= cl.c.opts.ClientStop
	if cl.c.Alive(cl.node) {
		// Retries first (oldest first), then at most one fresh
		// submission per event.
		for len(cl.retryQ) > 0 {
			tx := cl.retryQ[0]
			if !cl.submit(tx, true) {
				break // still over capacity; keep backing off
			}
			cl.retryQ = cl.retryQ[1:]
		}
		if !stopped && len(cl.retryQ) == 0 {
			cl.seq++
			tx := workload.Make(cl.node, uint32(cl.k)<<24|cl.seq, now, cl.c.opts.TxSize)
			cl.Report.Submitted++
			cl.submit(tx, false)
		}
	}
	cl.drain()
	if !stopped || len(cl.order) > 0 || len(cl.retryQ) > 0 {
		cl.arm()
	}
}

// submit runs one submission through the hub; reports false when the
// transaction was rejected over-capacity and must be retried later.
func (cl *SimClient) submit(tx []byte, isRetry bool) bool {
	if isRetry {
		cl.Report.Resubmitted++
	}
	cl.nextReq++
	rc := cl.c.Hubs[cl.node].Submit(cl.id, cl.nextReq, tx)
	switch rc.Status {
	case gateway.StatusAccepted:
		cl.Report.Accepted++
		cl.track(rc.TxHash, tx)
	case gateway.StatusDuplicatePending, gateway.StatusDuplicateCommitted:
		// Idempotent resubmission: the original's commit (possibly
		// re-streamed just now) satisfies this copy.
		cl.Report.RejectedDup++
		cl.track(rc.TxHash, tx)
	case gateway.StatusOverCapacity, gateway.StatusRateLimited:
		cl.Report.RejectedBusy++
		if !isRetry {
			cl.retryQ = append(cl.retryQ, tx)
		}
		return false
	default:
		cl.Report.OtherRejects++
	}
	return true
}

func (cl *SimClient) track(h mempool.Hash, tx []byte) {
	if _, ok := cl.outstanding[h]; ok {
		return
	}
	cl.outstanding[h] = outTx{tx: tx, at: cl.c.Sim.Now()}
	cl.order = append(cl.order, h)
}

// drain consumes every queued commit, verifying its proof.
func (cl *SimClient) drain() {
	for {
		select {
		case cm := <-cl.sub.C:
			out, ok := cl.outstanding[cm.TxHash]
			if ok {
				delete(cl.outstanding, cm.TxHash)
				for i, h := range cl.order {
					if h == cm.TxHash {
						cl.order = append(cl.order[:i], cl.order[i+1:]...)
						break
					}
				}
			}
			verified := cm.VerifyHash()
			if verified && ok {
				verified = cm.Verify(out.tx)
			}
			if !verified {
				cl.Report.VerifyFailures++
				continue
			}
			cl.Report.Commits++
			if ok {
				cl.Report.Latencies = append(cl.Report.Latencies, cl.c.Sim.Now()-out.at)
			}
		default:
			return
		}
	}
}

// resubmit re-offers every uncommitted transaction to the node's fresh
// incarnation — dlclient's reconnect behaviour. Dedup (recovered from
// the WAL) turns already-committed copies into duplicate receipts with
// re-streamed proofs; genuinely lost ones are simply accepted again.
func (cl *SimClient) resubmit() {
	pending := make([][]byte, 0, len(cl.order))
	for _, h := range cl.order {
		pending = append(pending, cl.outstanding[h].tx)
	}
	for _, tx := range pending {
		if !cl.submit(tx, true) {
			cl.retryQ = append(cl.retryQ, tx)
		}
	}
	cl.drain()
}
