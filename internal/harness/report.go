package harness

import (
	"fmt"
	"strings"
	"time"
)

// This file renders experiment results as the rows/series the paper
// reports, shared by cmd/dlbench, cmd/dlsim and bench_test.go.

// FormatFig2 renders the Fig 2 table: per-node dispersal cost normalized
// by block size.
func FormatFig2(points []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — per-node dispersal communication cost (fraction of |B|)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s %12s %10s\n", "N", "|B|", "AVID-M", "AVID-FP", "bound 1/k", "FP/M")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %10s %12.4f %12.4f %12.4f %10.1fx\n",
			p.N, byteSize(p.BlockSize), p.AVIDM, p.AVIDFP, p.LowerBound, p.AVIDFP/p.AVIDM)
	}
	return b.String()
}

// FormatGeo renders a Fig 8 / Fig 15-style per-city throughput table.
func FormatGeo(results []*GeoResult) string {
	if len(results) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-server throughput (paper-equivalent MB/s)\n")
	fmt.Fprintf(&b, "%-12s", "site")
	for _, r := range results {
		fmt.Fprintf(&b, " %10s", r.Mode)
	}
	fmt.Fprintln(&b)
	for i, name := range results[0].Names {
		fmt.Fprintf(&b, "%-12s", name)
		for _, r := range results {
			fmt.Fprintf(&b, " %10.2f", r.Throughput[i])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s", "MEAN")
	for _, r := range results {
		fmt.Fprintf(&b, " %10.2f", r.Mean)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// FormatProgress renders Fig 9-style progress series, sampled at fixed
// intervals (bytes confirmed per node over time, paper-equivalent GB).
func FormatProgress(r *ProgressResult, step time.Duration, horizon time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 (%s) — cumulative confirmed bytes (paper-equivalent GB)\n", r.Mode)
	fmt.Fprintf(&b, "%8s", "t")
	for _, name := range r.Names {
		fmt.Fprintf(&b, " %9s", truncate(name, 9))
	}
	fmt.Fprintln(&b)
	for t := time.Duration(0); t <= horizon; t += step {
		fmt.Fprintf(&b, "%8s", t)
		for _, ts := range r.Series {
			fmt.Fprintf(&b, " %9.3f", ts.At(t)/float64(1<<30))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatLatency renders one Fig 10 load point.
func FormatLatency(results []*LatencyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — confirmation latency of local transactions (median [p5 p95])\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s @ %.1f MB/s per node:\n", r.Mode, r.LoadPerNode/float64(1<<20))
		for i, name := range r.Names {
			fmt.Fprintf(&b, "  %-12s %10s [%8s %8s]\n", name,
				round(r.P50[i]), round(r.P5[i]), round(r.P95[i]))
		}
	}
	return b.String()
}

// FormatControlled renders Fig 11a/b-style results.
func FormatControlled(title string, results []*ControlledResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-6s", "node")
	for _, r := range results {
		fmt.Fprintf(&b, " %10s", r.Mode)
	}
	fmt.Fprintln(&b)
	if len(results) > 0 {
		for i := range results[0].Throughput {
			fmt.Fprintf(&b, "%-6d", i)
			for _, r := range results {
				fmt.Fprintf(&b, " %10.2f", r.Throughput[i])
			}
			fmt.Fprintln(&b)
		}
	}
	fmt.Fprintf(&b, "%-6s", "mean")
	for _, r := range results {
		fmt.Fprintf(&b, " %10.2f", r.Mean)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-6s", "std")
	for _, r := range results {
		fmt.Fprintf(&b, " %10.2f", r.Std)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// FormatScale renders Fig 12 + Fig 13 rows.
func FormatScale(points []*ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12/13 — scalability (throughput in paper-equivalent MB/s)\n")
	fmt.Fprintf(&b, "%6s %10s %12s %8s %18s\n", "N", "block", "throughput", "± std", "dispersal frac")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %10s %12.2f %8.2f %18.4f\n",
			p.N, byteSize(p.BlockBytes), p.Throughput, p.ThroughputStd, p.DispersalFraction)
	}
	return b.String()
}

// FormatHeadline renders the §6.2 headline comparisons from geo runs.
func FormatHeadline(hb, hbLink, dl, dlc *GeoResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.2 headline ratios (paper: DL/HB ≈ 2.05x, HB-Link/HB ≈ 1.45x, DL/HB-Link ≈ 1.41x, DL-Coupled ≈ 0.88x DL)\n")
	fmt.Fprintf(&b, "  DL / HB         = %.2fx\n", dl.Mean/hb.Mean)
	fmt.Fprintf(&b, "  HB-Link / HB    = %.2fx\n", hbLink.Mean/hb.Mean)
	fmt.Fprintf(&b, "  DL / HB-Link    = %.2fx\n", dl.Mean/hbLink.Mean)
	fmt.Fprintf(&b, "  DL-Coupled / DL = %.2fx\n", dlc.Mean/dl.Mean)
	return b.String()
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func round(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
