package harness

// State-sync experiments: the workload class checkpoint transfer opens
// up. Two scenarios exercise internal/statesync end to end on the
// deterministic emulator:
//
//   - RunOutageBeyondHorizon crashes a node, drives the cluster far
//     enough past its RetainEpochs horizon that every peer prunes the
//     epochs the victim would need to replay, then restarts it from its
//     (now hopelessly stale) store. The victim's catch-up must discover
//     the pruned gap, bootstrap from a peer checkpoint, and return to
//     full participation.
//   - RunJoin boots a configured-but-never-started member into a
//     running cluster with an empty store (`dlnode -join`'s emulated
//     counterpart) and requires the same outcome.
//
// "Full participation" is checked from the outside: the rejoined node
// delivers new epochs in agreement with a witness (its log re-attaches
// as a contiguous window of the witness log after the synced-over gap),
// and the witness commits blocks the rejoined node proposed after its
// return.

import (
	"fmt"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/trace"
)

// StateSyncParams configures the state-sync scenarios.
type StateSyncParams struct {
	// N and F size the cluster (defaults 4 and 1).
	N, F int
	// Victim is the node crashed (or joined late); default 0.
	Victim int
	// RetainEpochs is the peers' GC horizon (default 12) and
	// SyncPointEvery the checkpoint cadence (default 8).
	RetainEpochs   uint64
	SyncPointEvery uint64
	// CrashAt / RestartAt bound the outage (defaults 6s / 22s; RestartAt
	// doubles as the join instant in RunJoin). Duration is the horizon
	// (default 40s).
	CrashAt   time.Duration
	RestartAt time.Duration
	Duration  time.Duration
	// Rate is per-node bandwidth (default 2 MB/s); LoadPerNode the
	// offered load (default 50 KB/s).
	Rate        float64
	LoadPerNode float64
	// Clients attaches emulated gateway clients per node (0 = none),
	// exercising committed-hash seeding across the gap.
	Clients int
	Seed    int64
}

func (p *StateSyncParams) defaults() {
	if p.N == 0 {
		p.N, p.F = 4, 1
	}
	if p.F == 0 {
		p.F = (p.N - 1) / 3
	}
	if p.RetainEpochs == 0 {
		p.RetainEpochs = 12
	}
	if p.SyncPointEvery == 0 {
		p.SyncPointEvery = 8
	}
	if p.CrashAt == 0 {
		p.CrashAt = 6 * time.Second
	}
	if p.RestartAt == 0 {
		p.RestartAt = 22 * time.Second
	}
	if p.Duration == 0 {
		p.Duration = 40 * time.Second
	}
	if p.Rate == 0 {
		p.Rate = 2 * trace.MB
	}
	if p.LoadPerNode == 0 {
		p.LoadPerNode = 50 << 10
	}
}

// StateSyncResult reports one scenario run.
type StateSyncResult struct {
	// PreCrash is the victim's delivered-block count at the crash (0 for
	// a fresh join).
	PreCrash int
	// StateSyncs is the victim's completed-bootstrap count (must be >= 1
	// for the scenario to have exercised the subsystem).
	StateSyncs int64
	// SyncedTo is the checkpoint position the victim adopted.
	SyncedTo uint64
	// VictimBlocks / WitnessBlocks are final delivered-block counts.
	VictimBlocks, WitnessBlocks int
	// GapSkipped is how many witness log positions the victim's
	// re-attached log skipped over — nonzero proves the node synced past
	// history instead of replaying it.
	GapSkipped int
	// Violations collects agreement/participation failures (empty on
	// success).
	Violations []string
	// ProposedAfter is true when the witness delivered a block the
	// victim proposed after its return.
	ProposedAfter bool
	// CaughtUp is true when the victim closed most of the delivery gap
	// to the witness by the horizon.
	CaughtUp bool
	// PrunedAtPeers is the witness's pruned-through watermark at the
	// restart instant (sanity: must exceed the victim's position for the
	// outage to be beyond the horizon).
	PrunedAtPeers uint64
}

// Failed reports whether the scenario missed any requirement.
func (r *StateSyncResult) Failed() bool { return len(r.Violations) > 0 }

func (p StateSyncParams) cluster() (*Cluster, *LogRecorder, error) {
	traces := make([]trace.Trace, p.N)
	for i := range traces {
		traces[i] = trace.Constant(p.Rate)
	}
	c, err := NewCluster(ClusterOptions{
		Core: core.Config{
			N: p.N, F: p.F, Mode: core.ModeDL,
			CoinSecret:     []byte("state sync experiment"),
			RetainEpochs:   p.RetainEpochs,
			StateSync:      true,
			SyncPointEvery: p.SyncPointEvery,
		},
		Replica:     replica.Params{BatchDelay: 100 * time.Millisecond},
		Egress:      traces,
		TxSize:      250,
		LoadPerNode: p.LoadPerNode,
		Durable:     true,
		Clients:     p.Clients,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, NewLogRecorder(c), nil
}

// finish runs the common assertions after the horizon.
func (p StateSyncParams) finish(c *Cluster, lr *LogRecorder, res *StateSyncResult, frontierAtReturn int64) {
	witness := (p.Victim + 1) % p.N
	victimLog, witnessLog := lr.Log(p.Victim), lr.Log(witness)
	res.VictimBlocks, res.WitnessBlocks = len(victimLog), len(witnessLog)
	res.StateSyncs = c.Replicas[p.Victim].Stats.StateSyncs
	res.SyncedTo = c.Replicas[p.Victim].Engine().SyncStats().LastSyncEpoch
	if res.StateSyncs < 1 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"victim completed %d state syncs, want >= 1", res.StateSyncs))
	}

	gap, violations := CheckSegmentedAgreement(p.Victim, victimLog, witness, witnessLog, int(res.StateSyncs))
	res.GapSkipped = gap
	res.Violations = append(res.Violations, violations...)
	if res.StateSyncs >= 1 && gap == 0 && res.PreCrash > 0 {
		res.Violations = append(res.Violations, "victim state-synced but its log shows no skipped gap")
	}

	// Full participation: the victim proposed after its return and the
	// witness committed it.
	for _, e := range witnessLog {
		if e.Proposer == p.Victim && int64(e.Epoch) > frontierAtReturn {
			res.ProposedAfter = true
			break
		}
	}
	if !res.ProposedAfter {
		res.Violations = append(res.Violations,
			"witness never delivered a block the victim proposed after its return")
	}

	// Compare delivered log positions, not epoch counters: a synced node
	// never counts the epochs it checkpointed across.
	caughtTo := c.Replicas[p.Victim].Engine().DeliveredEpoch()
	witnessTo := c.Replicas[witness].Engine().DeliveredEpoch()
	res.CaughtUp = res.VictimBlocks > res.PreCrash && caughtTo+2 >= witnessTo
	if !res.CaughtUp {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"victim did not catch up (delivered through epoch %d vs witness %d)", caughtTo, witnessTo))
	}
}

// RunOutageBeyondHorizon executes the long-outage scenario.
func RunOutageBeyondHorizon(p StateSyncParams) (*StateSyncResult, error) {
	p.defaults()
	c, lr, err := p.cluster()
	if err != nil {
		return nil, err
	}
	c.Start()

	res := &StateSyncResult{}
	var restartErr error
	var frontierAtReturn int64
	witness := (p.Victim + 1) % p.N
	c.Sim.After(p.CrashAt, func() {
		c.Crash(p.Victim)
		res.PreCrash = len(lr.Log(p.Victim))
	})
	c.Sim.After(p.RestartAt, func() {
		res.PrunedAtPeers = c.Replicas[witness].Engine().PrunedThrough()
		frontierAtReturn = c.Replicas[witness].Stats.EpochsDelivered
		if err := c.Restart(p.Victim, lr.Hook(p.Victim)); err != nil {
			restartErr = err
		}
	})
	c.Run(p.Duration)
	if restartErr != nil {
		return nil, restartErr
	}
	// The outage must genuinely exceed the horizon, or the run proves
	// nothing about state sync.
	if res.PrunedAtPeers == 0 {
		res.Violations = append(res.Violations,
			"peers never pruned past the victim's position — outage was within the horizon")
	}
	p.finish(c, lr, res, frontierAtReturn)
	return res, nil
}

// RunJoin executes the fresh-member scenario: node Victim is configured
// but never boots until RestartAt, when AddNode spawns it with an empty
// store.
func RunJoin(p StateSyncParams) (*StateSyncResult, error) {
	p.defaults()
	c, lr, err := p.cluster()
	if err != nil {
		return nil, err
	}
	c.Hold(p.Victim)
	c.Start()

	res := &StateSyncResult{}
	var joinErr error
	var frontierAtReturn int64
	witness := (p.Victim + 1) % p.N
	c.Sim.After(p.RestartAt, func() {
		res.PrunedAtPeers = c.Replicas[witness].Engine().PrunedThrough()
		frontierAtReturn = c.Replicas[witness].Stats.EpochsDelivered
		if err := c.AddNode(p.Victim, lr.Hook(p.Victim)); err != nil {
			joinErr = err
		}
	})
	c.Run(p.Duration)
	if joinErr != nil {
		return nil, joinErr
	}
	p.finish(c, lr, res, frontierAtReturn)
	return res, nil
}
