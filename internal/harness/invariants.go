package harness

// Whole-cluster invariant checking for adversarial simulation runs
// (internal/chaos). A LogRecorder observes every delivery at every node;
// the Check* functions state the paper's correctness properties over the
// recorded logs in a form a test can assert:
//
//   - Agreement: the delivery logs of any two honest nodes are prefixes
//     of each other — same blocks, same order, same contents.
//   - Integrity: no honest log delivers the same block slot twice.
//   - Validity-shaped sanity: every delivered transaction parses as a
//     workload transaction from a real node (the emulator's stand-in for
//     "was actually submitted").
//
// The checkers return human-readable violation strings rather than
// booleans so a failing seeded run reports everything wrong at once.

import (
	"fmt"
	"hash/fnv"

	"dledger/internal/replica"
	"dledger/internal/workload"
)

// LogEntry is one delivered block as recorded for invariant checking.
// TxSum fingerprints the block's transaction contents, so agreement is
// checked over contents, not just slot identity.
type LogEntry struct {
	Epoch    uint64
	Proposer int
	Linked   bool
	TxCount  int
	Payload  int
	TxSum    uint64
}

// LogRecorder captures every node's delivery log.
type LogRecorder struct {
	logs [][]LogEntry
	txs  [][]txRec // raw transactions per node, for validity checks
}

// txRec tags a delivered transaction with the proposer of its block:
// validity is only promised for honest proposers (a Byzantine one may
// commit arbitrary bytes — the application layer filters those).
type txRec struct {
	proposer int
	tx       []byte
}

// NewLogRecorder attaches delivery hooks to every replica of a
// not-yet-started cluster and records each node's log.
func NewLogRecorder(c *Cluster) *LogRecorder {
	lr := &LogRecorder{
		logs: make([][]LogEntry, len(c.Replicas)),
		txs:  make([][]txRec, len(c.Replicas)),
	}
	for i := range c.Replicas {
		c.SetDeliverHook(i, lr.Hook(i))
	}
	return lr
}

// Hook returns node i's delivery hook — pass it to Cluster.Restart so a
// restarted incarnation keeps appending to the same log.
func (lr *LogRecorder) Hook(i int) func(replica.Delivery) {
	return func(d replica.Delivery) {
		h := fnv.New64a()
		for _, tx := range d.Txs {
			h.Write(tx)
			h.Write([]byte{0})
			lr.txs[i] = append(lr.txs[i], txRec{proposer: d.Proposer, tx: tx})
		}
		lr.logs[i] = append(lr.logs[i], LogEntry{
			Epoch: d.Epoch, Proposer: d.Proposer, Linked: d.Linked,
			TxCount: len(d.Txs), Payload: d.Payload, TxSum: h.Sum64(),
		})
	}
}

// Log returns node i's recorded log.
func (lr *LogRecorder) Log(i int) []LogEntry { return lr.logs[i] }

// Logs returns all recorded logs (indexed by node).
func (lr *LogRecorder) Logs() [][]LogEntry { return lr.logs }

// CheckPrefixAgreement verifies that the logs of every pair of honest
// nodes agree over their common prefix. Honest nodes may be at different
// log lengths (DL decouples delivery rates; a restarted node may lag),
// but where both have delivered position k they must have delivered the
// same block with the same contents.
func CheckPrefixAgreement(logs [][]LogEntry, honest []int) []string {
	var out []string
	for a := 0; a < len(honest); a++ {
		for b := a + 1; b < len(honest); b++ {
			i, j := honest[a], honest[b]
			li, lj := logs[i], logs[j]
			n := len(li)
			if len(lj) < n {
				n = len(lj)
			}
			for k := 0; k < n; k++ {
				if li[k] != lj[k] {
					out = append(out, fmt.Sprintf(
						"agreement: nodes %d and %d diverge at log position %d: %+v vs %+v",
						i, j, k, li[k], lj[k]))
					break // one divergence per pair is enough noise
				}
			}
		}
	}
	return out
}

// CheckSegmentedAgreement verifies the log of a node that state-synced
// past history: the log must decompose into contiguous, content-
// identical windows of the witness log, in order, with at most maxGaps
// discontinuities — one per completed checkpoint bootstrap, each gap
// being the history the node verifiably skipped. A never-synced node
// (maxGaps 0) degenerates to strict prefix agreement. It returns how
// many witness positions the gaps skipped in total. A witness that has
// not yet delivered far enough yields no verdict on the remaining tail
// (the caller's liveness checks cover progress).
func CheckSegmentedAgreement(node int, log []LogEntry, witnessNode int, witness []LogEntry, maxGaps int) (skipped int, out []string) {
	wi := 0
	gaps := 0
	for li := 0; li < len(log); li++ {
		if wi >= len(witness) {
			return skipped, out // witness is behind; tail is unjudgeable
		}
		if log[li] == witness[wi] {
			wi++
			continue
		}
		if gaps >= maxGaps {
			out = append(out, fmt.Sprintf(
				"agreement: nodes %d and %d diverge at log position %d (%d sync gaps already used): %+v vs %+v",
				node, witnessNode, li, gaps, log[li], witness[wi]))
			return skipped, out
		}
		found := -1
		for k := wi + 1; k < len(witness); k++ {
			if witness[k] == log[li] {
				found = k
				break
			}
		}
		if found == -1 {
			if len(witness)-wi >= len(log)-li {
				out = append(out, fmt.Sprintf(
					"agreement: node %d's log position %d never re-attaches to node %d's log: %+v",
					node, li, witnessNode, log[li]))
			}
			return skipped, out
		}
		gaps++
		skipped += found - wi
		wi = found + 1
	}
	return skipped, out
}

// CheckNoDuplicates verifies a single log delivers each (epoch, proposer)
// slot at most once.
func CheckNoDuplicates(node int, log []LogEntry) []string {
	var out []string
	seen := map[[2]uint64]bool{}
	for k, e := range log {
		key := [2]uint64{e.Epoch, uint64(e.Proposer)}
		if seen[key] {
			out = append(out, fmt.Sprintf(
				"integrity: node %d delivered slot (epoch %d, proposer %d) twice (second at position %d)",
				node, e.Epoch, e.Proposer, k))
		}
		seen[key] = true
	}
	return out
}

// CheckNoDuplicateTxs verifies node `node` never delivered the same
// transaction content twice across honestly-proposed blocks — the
// exactly-once property the gateway's content-hash dedup promises
// clients even across retries and crash-restarts. Pairs involving a
// Byzantine proposer are skipped (such a proposer may copy an honest
// transaction into its own block; filtering that is the application's
// job, as with validity).
func (lr *LogRecorder) CheckNoDuplicateTxs(node int, honest []bool) []string {
	var out []string
	seen := map[uint64]int{} // content fingerprint -> first proposer
	for k, rec := range lr.txs[node] {
		if rec.proposer >= 0 && rec.proposer < len(honest) && !honest[rec.proposer] {
			continue
		}
		h := fnv.New64a()
		h.Write(rec.tx)
		sum := h.Sum64()
		if first, dup := seen[sum]; dup {
			out = append(out, fmt.Sprintf(
				"exactly-once: node %d delivered tx #%d twice (proposers %d and %d)",
				node, k, first, rec.proposer))
			continue
		}
		seen[sum] = rec.proposer
	}
	return out
}

// CheckTxValidity verifies every transaction delivered at node `node`
// from an honestly-proposed block parses as a workload transaction
// originating from a cluster member — the emulator's stand-in for "was
// actually submitted". Blocks from Byzantine proposers are skipped: the
// protocol lets a Byzantine node commit arbitrary bytes, and filtering
// them is the application's job. n is the cluster size; honest[j] marks
// honest proposers.
func (lr *LogRecorder) CheckTxValidity(node, n int, honest []bool) []string {
	var out []string
	for k, rec := range lr.txs[node] {
		if rec.proposer >= 0 && rec.proposer < len(honest) && !honest[rec.proposer] {
			continue
		}
		meta, err := workload.Parse(rec.tx)
		if err != nil {
			out = append(out, fmt.Sprintf(
				"validity: node %d delivered unparseable tx #%d: %v", node, k, err))
			continue
		}
		if meta.Origin < 0 || meta.Origin >= n {
			out = append(out, fmt.Sprintf(
				"validity: node %d delivered tx #%d with origin %d outside cluster of %d",
				node, k, meta.Origin, n))
		}
	}
	return out
}
