package harness

import (
	"testing"
	"time"
)

// TestOutageBeyondHorizon is the acceptance scenario for state sync: a
// node down long enough that every peer pruned its position must rejoin
// via checkpoint transfer and return to full participation.
func TestOutageBeyondHorizon(t *testing.T) {
	res, err := RunOutageBeyondHorizon(StateSyncParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations (synced to %d, gap %d, %d/%d blocks):\n  %v",
			res.SyncedTo, res.GapSkipped, res.VictimBlocks, res.WitnessBlocks, res.Violations)
	}
	if res.SyncedTo == 0 {
		t.Fatal("no synced position recorded")
	}
}

// TestFreshNodeJoins boots a configured-but-never-started member into a
// running cluster with an empty store (the dlnode -join path).
func TestFreshNodeJoins(t *testing.T) {
	res, err := RunJoin(StateSyncParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations (synced to %d, %d/%d blocks):\n  %v",
			res.SyncedTo, res.VictimBlocks, res.WitnessBlocks, res.Violations)
	}
}

// TestJoinWithClients runs the join scenario with gateway clients
// attached: the joiner's committed-hash memory must be seeded from the
// manifest so resubmissions of synced-over commits stay idempotent, and
// every proof must verify.
func TestJoinWithClients(t *testing.T) {
	res, err := RunJoin(StateSyncParams{Seed: 5, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestStateSyncDeterminism replays one scenario seed and requires
// byte-identical logs — the sync protocol must not break the emulator's
// replayability.
func TestStateSyncDeterminism(t *testing.T) {
	run := func() *StateSyncResult {
		res, err := RunOutageBeyondHorizon(StateSyncParams{Seed: 7, Duration: 32 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.VictimBlocks != b.VictimBlocks || a.WitnessBlocks != b.WitnessBlocks ||
		a.SyncedTo != b.SyncedTo || a.GapSkipped != b.GapSkipped {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
