package harness

// Trace-completeness invariant: with telemetry on, the epoch-lifecycle
// tracer of an honest node that never crashed, joined, or state-synced
// must hold a well-formed disperse → BA → retrieve → deliver timeline
// for every epoch its delivery log covers, and the telemetry counters
// must reconcile exactly with what the LogRecorder observed. Chaos
// sweeps (internal/chaos) run this next to the agreement checks, so a
// span dropped, double-stamped, or stamped out of order under faults is
// a red seed, not a dashboard curiosity.

import (
	"fmt"

	"dledger/internal/telemetry"
	"dledger/internal/telemetry/txtrace"
)

// traceStageOrder lists the pairwise orderings a delivered timeline must
// respect when both endpoints were observed.
var traceStageOrder = [][2]telemetry.Stage{
	{telemetry.StageDisperseStart, telemetry.StageDisperseDone},
	{telemetry.StageDisperseStart, telemetry.StageDeliver},
	{telemetry.StageBAInput, telemetry.StageBADecide},
	{telemetry.StageBADecide, telemetry.StageDeliver},
	{telemetry.StageRetrieveStart, telemetry.StageDeliver},
}

// CheckTraceCompleteness verifies node `node`'s telemetry against its
// recorded delivery log. It assumes the node's current incarnation
// observed the whole run (never crashed, joined, or synced): every
// distinct epoch in the log must have a delivered timeline whose stage
// timestamps are present and ordered, and the delivered-epoch, block
// and transaction counters must equal the log's totals. When jour is
// non-nil the sampled transaction journeys are held to the same
// standard: every finalized journey must be well-formed (checkpoint
// order, non-negative phases) and belong to an epoch this node's log
// shows it proposing in, and no sampled transaction may remain live in
// an epoch the log already covers (a stuck journey under faults is a
// telemetry bug, not a dashboard curiosity).
func CheckTraceCompleteness(node int, tel *telemetry.Metrics, jour *txtrace.Journeys, log []LogEntry) []string {
	var out []string
	if tel == nil {
		return []string{fmt.Sprintf("trace: node %d has no telemetry bundle", node)}
	}

	// The delivery log records one entry per block; collapse to the
	// distinct epochs and per-epoch totals the tracer and counters see.
	// Two shapes keep the sets from matching exactly: the horizon can
	// cut the highest logged epoch mid-delivery (blocks in the log, no
	// epoch-complete span yet), and an epoch whose every BA decided
	// zero completes with no blocks at all (a span, no log entries).
	epochs := map[uint64]bool{}
	blocks, txs := 0, 0
	maxEpoch := uint64(0)
	for _, e := range log {
		epochs[e.Epoch] = true
		blocks++
		txs += e.TxCount
		if e.Epoch > maxEpoch {
			maxEpoch = e.Epoch
		}
	}

	delivered := tel.Trace().Delivered()
	byEpoch := map[uint64]telemetry.Timeline{}
	for _, tl := range delivered {
		if _, dup := byEpoch[tl.Epoch]; dup {
			out = append(out, fmt.Sprintf("trace: node %d delivered epoch %d twice", node, tl.Epoch))
		}
		byEpoch[tl.Epoch] = tl
	}

	// Completeness: every fully delivered epoch's timeline is retained.
	for e := range epochs {
		if _, ok := byEpoch[e]; !ok && e != maxEpoch {
			out = append(out, fmt.Sprintf("trace: node %d delivered epoch %d with no timeline", node, e))
		}
	}
	// Well-formedness of every completed timeline (logged or empty).
	for _, tl := range byEpoch {
		e := tl.Epoch
		// An epoch cannot deliver without deciding, and a decided epoch
		// had at least one BA instance fed: those two stages (plus the
		// deliver stamp that completed the timeline) are unconditional.
		for _, s := range []telemetry.Stage{telemetry.StageBAInput, telemetry.StageBADecide, telemetry.StageDeliver} {
			if !tl.Has(s) {
				out = append(out, fmt.Sprintf("trace: node %d epoch %d delivered without a %s span", node, e, s))
			}
		}
		for _, ord := range traceStageOrder {
			a, b := ord[0], ord[1]
			if tl.Has(a) && tl.Has(b) && tl.At(a) > tl.At(b) {
				out = append(out, fmt.Sprintf("trace: node %d epoch %d has %s at %s after %s at %s",
					node, e, a, tl.At(a), b, tl.At(b)))
			}
		}
		if tl.Has(telemetry.StageBAInput) && tl.E2E() <= 0 {
			out = append(out, fmt.Sprintf("trace: node %d epoch %d delivered with non-positive e2e %s",
				node, e, tl.E2E()))
		}
	}

	// Counter reconciliation: re-registering a family returns the live
	// handle, so these are the very counters the replica incremented.
	// The epoch counter and the tracer observe the same epoch-complete
	// event, so they must agree exactly; blocks and transactions are
	// counted per delivery and must match the log to the unit.
	reg := tel.Registry()
	if got := reg.Counter("dl_epochs_delivered_total", "", "").Value(); got != uint64(len(byEpoch)) {
		out = append(out, fmt.Sprintf("trace: node %d counted %d delivered epochs, tracer holds %d timelines",
			node, got, len(byEpoch)))
	}
	linked := reg.Counter("dl_blocks_delivered_total", `kind="linked"`, "").Value()
	ba := reg.Counter("dl_blocks_delivered_total", `kind="ba"`, "").Value()
	if linked+ba != uint64(blocks) {
		out = append(out, fmt.Sprintf("trace: node %d counted %d+%d delivered blocks, log has %d",
			node, linked, ba, blocks))
	}
	if got := reg.Counter("dl_txs_delivered_total", "", "").Value(); got != uint64(txs) {
		out = append(out, fmt.Sprintf("trace: node %d counted %d delivered txs, log has %d",
			node, got, txs))
	}
	out = append(out, checkJourneys(node, jour, epochs, maxEpoch, log)...)
	return out
}

// checkJourneys validates the sampled transaction journeys against the
// delivery log: finalized journeys are well-formed and reconcile with
// the epochs this node proposed in; live journeys are not stuck in an
// epoch the log already delivered.
func checkJourneys(node int, jour *txtrace.Journeys, epochs map[uint64]bool, maxEpoch uint64, log []LogEntry) []string {
	if jour == nil {
		return nil
	}
	var out []string
	// The journeys layer only tracks transactions this node submitted
	// and proposed itself, so a finalized journey's epoch must appear
	// in the log with this node as proposer.
	selfEpochs := map[uint64]bool{}
	for _, e := range log {
		if e.Proposer == node {
			selfEpochs[e.Epoch] = true
		}
	}
	for _, j := range jour.Completed() {
		if !j.Complete {
			out = append(out, fmt.Sprintf("trace: node %d journey %x finalized without Complete", node, j.Hash[:4]))
		}
		for p := txtrace.Phase(0); p < txtrace.NumPhases; p++ {
			if j.Phases[p] < 0 {
				out = append(out, fmt.Sprintf("trace: node %d journey %x has negative %s phase %s",
					node, j.Hash[:4], p, j.Phases[p]))
			}
		}
		if j.Proposals > 0 && j.Proposed < j.Enqueued {
			out = append(out, fmt.Sprintf("trace: node %d journey %x proposed at %s before enqueue at %s",
				node, j.Hash[:4], j.Proposed, j.Enqueued))
		}
		if j.HasDelivered && (j.Delivered < j.Enqueued || j.Done < j.Delivered) {
			out = append(out, fmt.Sprintf("trace: node %d journey %x checkpoints out of order (enq %s, deliver %s, done %s)",
				node, j.Hash[:4], j.Enqueued, j.Delivered, j.Done))
		}
		// The journey finalizes when its epoch delivers; an epoch this
		// node never proposed in (per its own log) cannot carry one of
		// its transactions. An empty-block epoch leaves no log entry,
		// but an empty block also carries no transactions, so every
		// journey-bearing epoch must be logged.
		if !selfEpochs[j.Epoch] {
			out = append(out, fmt.Sprintf("trace: node %d journey %x finalized in epoch %d, which its log never shows it proposing",
				node, j.Hash[:4], j.Epoch))
		}
	}
	// Stuck detection: a live journey already assigned to an epoch the
	// log covers (horizon cut aside) means EpochDelivered never
	// finalized it — exactly the stall the flight-recorder checkpoints
	// exist to expose.
	for _, j := range jour.Live() {
		if j.Proposals > 0 && epochs[j.Epoch] && j.Epoch != maxEpoch {
			out = append(out, fmt.Sprintf("trace: node %d journey %x stuck live in delivered epoch %d",
				node, j.Hash[:4], j.Epoch))
		}
	}
	return out
}
