package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := map[float64]float64{0: 1, 20: 1, 50: 3, 95: 5, 100: 5}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestDurationPercentile(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second, 2 * time.Second}
	if got := DurationPercentile(ds, 50); got != 2*time.Second {
		t.Fatalf("median = %v", got)
	}
	if DurationPercentile(nil, 50) != 0 {
		t.Fatal("empty duration percentile should be 0")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 10_000; i++ {
		x := rng.NormFloat64()*3 + 10
		w.Add(x)
		xs = append(xs, x)
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-9 {
		t.Fatalf("Welford stddev %v vs batch %v", w.StdDev(), StdDev(xs))
	}
	if w.N() != 10_000 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestTimeSeries(t *testing.T) {
	ts := &TimeSeries{MinGap: time.Second}
	ts.Add(0, 10)
	ts.Add(500*time.Millisecond, 20) // suppressed by MinGap
	ts.Add(time.Second, 30)
	ts.Force(1100*time.Millisecond, 40) // forced through
	if len(ts.Times) != 3 {
		t.Fatalf("kept %d points, want 3", len(ts.Times))
	}
	if got := ts.At(0); got != 10 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := ts.At(999 * time.Millisecond); got != 10 {
		t.Fatalf("At(0.999s) = %v", got)
	}
	if got := ts.At(time.Second); got != 30 {
		t.Fatalf("At(1s) = %v", got)
	}
	if got := ts.At(-time.Second); got != 0 {
		t.Fatalf("At(-1s) = %v", got)
	}
	if got := ts.At(time.Hour); got != 40 {
		t.Fatalf("At(1h) = %v", got)
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := &TimeSeries{}
	ts.Force(0, 0)
	ts.Force(10*time.Second, 1000)
	if got := ts.Rate(0, 10*time.Second); got != 100 {
		t.Fatalf("rate = %v, want 100/s", got)
	}
	if got := ts.Rate(10*time.Second, 10*time.Second); got != 0 {
		t.Fatal("degenerate window should be 0")
	}
}
