package stats

import "time"

// reservoirDefaultCap bounds a zero-value Reservoir.
const reservoirDefaultCap = 8192

// Reservoir is a bounded uniform sample of durations (Vitter's
// algorithm R): the first Cap observations are kept verbatim, later
// ones replace a uniformly-chosen slot with probability Cap/n. It
// replaces the unbounded latency slices the evaluation harness used to
// accumulate, keeping percentile queries accurate at any run length in
// O(Cap) memory. The replacement randomness is a deterministic
// splitmix64 stream, so emulator runs stay reproducible. The zero
// value is ready to use with the default capacity.
type Reservoir struct {
	// Cap is the maximum number of retained samples (0 = 8192). Set it
	// before the first Add; it is ignored afterwards.
	Cap     int
	n       uint64
	rng     uint64
	samples []time.Duration
}

// Add ingests one observation.
func (r *Reservoir) Add(d time.Duration) {
	cap := r.Cap
	if cap <= 0 {
		cap = reservoirDefaultCap
	}
	r.n++
	if len(r.samples) < cap {
		r.samples = append(r.samples, d)
		return
	}
	if j := r.next() % r.n; j < uint64(cap) {
		r.samples[j] = d
	}
}

// next advances the deterministic splitmix64 stream.
func (r *Reservoir) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Count returns the total number of observations (not the retained
// sample size).
func (r *Reservoir) Count() uint64 { return r.n }

// Percentile returns the p-th percentile (0..100) of the retained
// sample, 0 when empty.
func (r *Reservoir) Percentile(p float64) time.Duration {
	return DurationPercentile(r.samples, p)
}

// Samples returns the retained sample (not a copy; do not mutate).
func (r *Reservoir) Samples() []time.Duration { return r.samples }
