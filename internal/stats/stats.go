// Package stats provides the small statistics toolkit used by the
// experiment harness: percentiles for latency distributions (Fig 10, 14),
// time series of confirmed bytes (Fig 9), and running mean/variance for
// error bars (Fig 11b, 12).
package stats

import (
	"math"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// DurationPercentile is Percentile over time.Durations.
func DurationPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Percentile(xs, p))
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Welford accumulates running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add ingests one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// TimeSeries records a monotone cumulative quantity over time (e.g.
// confirmed bytes) with bounded memory, for progress plots like Fig 9.
type TimeSeries struct {
	Times  []time.Duration
	Values []float64
	// MinGap suppresses points closer together than this (0 = keep all).
	MinGap time.Duration
}

// Add appends a point, subject to MinGap thinning. The final point of a
// run should be added with Force.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if n := len(ts.Times); n > 0 && ts.MinGap > 0 && t-ts.Times[n-1] < ts.MinGap {
		return
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Force appends a point unconditionally.
func (ts *TimeSeries) Force(t time.Duration, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// At returns the value at time t (step interpolation; 0 before the first
// point).
func (ts *TimeSeries) At(t time.Duration) float64 {
	i := sort.Search(len(ts.Times), func(i int) bool { return ts.Times[i] > t })
	if i == 0 {
		return 0
	}
	return ts.Values[i-1]
}

// Rate returns the average growth per second between two times.
func (ts *TimeSeries) Rate(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return (ts.At(to) - ts.At(from)) / (to - from).Seconds()
}
