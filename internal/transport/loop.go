// Package transport runs DispersedLedger replicas over real networks.
//
// Two backends share one node model:
//
//   - Memory: an in-process backend connecting nodes with channels, used
//     by the public API's NewCluster and the quickstart example.
//   - TCP: a real mesh over the operating system's TCP stack, with one
//     high-priority and one low-priority connection per ordered node
//     pair, sender-side strict prioritization of dispersal over
//     retrieval traffic, and per-epoch ordering of retrieval traffic.
//
// Fidelity note (DESIGN.md): the paper achieves its 30:1 bandwidth split
// by tuning QUIC's congestion controller (MulTcp). Kernel TCP offers no
// such knob, so the TCP backend prioritizes at the sender and leaves
// bottleneck sharing to TCP; the emulator (package simnet) is where the
// weighted-sharing behaviour is reproduced exactly.
//
// Every node runs a single-goroutine event loop; the replica, which is a
// single-threaded state machine, executes entirely on that loop.
package transport

import (
	"sync"
	"time"
)

// eventLoop serializes all work of one node onto one goroutine.
type eventLoop struct {
	start time.Time
	ch    chan func()
	done  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newEventLoop() *eventLoop {
	l := &eventLoop{
		start: time.Now(),
		ch:    make(chan func(), 4096),
		done:  make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l
}

func (l *eventLoop) run() {
	defer l.wg.Done()
	for {
		select {
		case fn := <-l.ch:
			fn()
		case <-l.done:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-l.ch:
					fn()
				default:
					return
				}
			}
		}
	}
}

// post schedules fn on the loop; it drops work after close.
func (l *eventLoop) post(fn func()) {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return
	}
	select {
	case l.ch <- fn:
	case <-l.done:
	}
}

// now returns the loop-relative monotonic time.
func (l *eventLoop) now() time.Duration { return time.Since(l.start) }

// after schedules fn on the loop after d.
func (l *eventLoop) after(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { l.post(fn) })
}

func (l *eventLoop) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
}
