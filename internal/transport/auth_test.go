package transport

import (
	"crypto/ed25519"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/workload"
)

// detRand is a deterministic io.Reader for reproducible key generation.
type detRand struct{ rng *rand.Rand }

func (d *detRand) Read(p []byte) (int, error) { return d.rng.Read(p) }

func TestGenerateKeyring(t *testing.T) {
	keys, err := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("got %d keyrings", len(keys))
	}
	for i, k := range keys {
		if k.Self != i {
			t.Fatalf("keyring %d has Self=%d", i, k.Self)
		}
		// Each node's private key matches the shared public key list.
		msg := []byte("check")
		sig := ed25519.Sign(k.Private, msg)
		if !ed25519.Verify(keys[0].Publics[i], msg, sig) {
			t.Fatalf("keyring %d key mismatch", i)
		}
	}
}

func TestAuthHandshakeSuccess(t *testing.T) {
	keys, _ := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(2))})
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	type result struct {
		from  int
		class byte
		err   error
	}
	done := make(chan result, 1)
	go func() {
		from, class, err := authAccept(server, keys[0])
		done <- result{from, class, err}
	}()
	if err := authDial(client, keys[2], classLow); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.from != 2 || r.class != classLow {
		t.Fatalf("authenticated as (%d, %d), want (2, %d)", r.from, r.class, classLow)
	}
}

func TestAuthHandshakeRejectsImpersonation(t *testing.T) {
	keys, _ := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(3))})
	// Node 3 tries to authenticate as node 1 using its own key.
	evil := &Keyring{Self: 1, Private: keys[3].Private, Publics: keys[3].Publics}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := authAccept(server, keys[0])
		errCh <- err
	}()
	authDial(client, evil, classHigh)
	if err := <-errCh; err == nil {
		t.Fatal("impersonation accepted")
	}
}

func TestAuthHandshakeRejectsGarbage(t *testing.T) {
	keys, _ := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(4))})
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := authAccept(server, keys[0])
		errCh <- err
	}()
	// Consume the challenge, reply with junk of the right size.
	go func() {
		var ch [challengeSize]byte
		io.ReadFull(client, ch[:])
		junk := make([]byte, 7+ed25519.SignatureSize)
		binary.BigEndian.PutUint32(junk[0:4], handshakeMagic)
		client.Write(junk)
	}()
	if err := <-errCh; err == nil {
		t.Fatal("garbage handshake accepted")
	}
}

func TestAuthReplayFails(t *testing.T) {
	// A recorded handshake answer must not authenticate against a fresh
	// challenge (each challenge is random).
	keys, _ := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(5))})

	// First, capture a legitimate exchange.
	c1, s1 := net.Pipe()
	var recorded []byte
	go func() {
		var ch [challengeSize]byte
		io.ReadFull(c1, ch[:])
		// Sign honestly for this challenge...
		var buf [7 + ed25519.SignatureSize]byte
		binary.BigEndian.PutUint32(buf[0:4], handshakeMagic)
		binary.BigEndian.PutUint16(buf[4:6], 2)
		buf[6] = classHigh
		copy(buf[7:], ed25519.Sign(keys[2].Private, authMessage(ch, 2, classHigh)))
		recorded = append([]byte(nil), buf[:]...)
		c1.Write(buf[:])
	}()
	if _, _, err := authAccept(s1, keys[0]); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Close()

	// Replay the recorded bytes against a new challenge.
	c2, s2 := net.Pipe()
	defer c2.Close()
	defer s2.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := authAccept(s2, keys[0])
		errCh <- err
	}()
	go func() {
		var ch [challengeSize]byte
		io.ReadFull(c2, ch[:])
		c2.Write(recorded)
	}()
	if err := <-errCh; err == nil {
		t.Fatal("replayed handshake accepted")
	}
}

func TestTCPClusterWithAuth(t *testing.T) {
	const n = 4
	keys, err := GenerateKeyring(n, &detRand{rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*TCPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewTCPNode(TCPOptions{
			Core:     core.Config{N: n, F: 1, Mode: core.ModeDL, CoinSecret: []byte("auth tcp secret")},
			Replica:  replica.Params{BatchDelay: 20 * time.Millisecond},
			Self:     i,
			Addrs:    addrs,
			Listener: listeners[i],
			Keys:     keys[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		defer node.Close()
	}
	for i, node := range nodes {
		node.Submit(workload.Make(i, 1, 0, 100))
	}
	waitFor(t, 30*time.Second, func() bool {
		ok := true
		for _, node := range nodes {
			node.Inspect(func(r *replica.Replica) {
				if r.Stats.DeliveredTxs < 4 {
					ok = false
				}
			})
		}
		return ok
	}, "authenticated TCP cluster delivers")
}

func TestTCPKeyringValidation(t *testing.T) {
	keys, _ := GenerateKeyring(4, &detRand{rand.New(rand.NewSource(7))})
	if _, err := NewTCPNode(TCPOptions{
		Core:  core.Config{N: 4, F: 1, CoinSecret: []byte("s")},
		Self:  0,
		Addrs: []string{"127.0.0.1:0", "x", "y", "z"},
		Keys:  keys[1], // wrong Self
	}); err == nil {
		t.Fatal("mismatched keyring accepted")
	}
}
