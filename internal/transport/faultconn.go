package transport

// Fault-injecting net.Conn wrapper: the chaos layer (internal/chaos)
// drives the emulated stack, but the TCP transport's reconnect and
// replay paths — dial backoff, the writer's pending-frame replay after a
// broken connection, reader resynchronization — only run over real
// sockets. A FaultInjector wraps every connection of a TCPNode
// (TCPOptions.Wrap) with seeded failures, extending chaos-style testing
// to the paths the emulator cannot reach.
//
// TCP is a byte stream, so the faults model what a real network can do
// to one: connections die (after a seeded byte budget, or with a seeded
// per-operation probability) and I/O stalls. Frame-level corruption is
// deliberately out of scope — TCP's checksum makes silent corruption a
// different threat class, and the wire decoder's fuzz tests cover it.

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedFault is returned by I/O on a connection the injector cut.
var ErrInjectedFault = errors.New("transport: injected connection fault")

// FaultOptions tunes a FaultInjector.
type FaultOptions struct {
	// KillAfterBytes kills a connection once it has transferred roughly
	// this many bytes (each connection draws its budget uniformly from
	// [KillAfterBytes/2, 3*KillAfterBytes/2)). 0 disables.
	KillAfterBytes int
	// CutProbability kills the connection on any single read or write
	// with this probability. 0 disables.
	CutProbability float64
	// MaxDelay stalls each operation for a uniform duration in
	// [0, MaxDelay). 0 disables.
	MaxDelay time.Duration
}

// FaultInjector produces faulty connections from a seed. Safe for
// concurrent use; the RNG is locked, so fault *placement* depends on
// scheduling — unlike the emulator, real-socket runs are not replayable,
// and the tests assert invariants, not byte-identical outcomes.
type FaultInjector struct {
	opts FaultOptions

	mu   sync.Mutex
	rng  *rand.Rand
	cuts int
}

// NewFaultInjector creates an injector with a seeded RNG.
func NewFaultInjector(seed int64, opts FaultOptions) *FaultInjector {
	return &FaultInjector{opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// Cuts reports how many connections the injector has killed.
func (fi *FaultInjector) Cuts() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.cuts
}

// Wrap returns conn with faults injected; pass it as TCPOptions.Wrap.
func (fi *FaultInjector) Wrap(conn net.Conn) net.Conn {
	fc := &faultConn{Conn: conn, fi: fi}
	if fi.opts.KillAfterBytes > 0 {
		fi.mu.Lock()
		half := fi.opts.KillAfterBytes / 2
		fc.budget = half + fi.rng.Intn(fi.opts.KillAfterBytes)
		fi.mu.Unlock()
	}
	return fc
}

// roll draws the per-operation fault decisions.
func (fi *FaultInjector) roll() (cut bool, delay time.Duration) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if p := fi.opts.CutProbability; p > 0 && fi.rng.Float64() < p {
		return true, 0
	}
	if d := fi.opts.MaxDelay; d > 0 {
		delay = time.Duration(fi.rng.Int63n(int64(d)))
	}
	return false, delay
}

// faultConn applies an injector's faults to one connection.
type faultConn struct {
	net.Conn
	fi *FaultInjector

	mu     sync.Mutex
	moved  int
	budget int // 0 = unlimited
	dead   bool
}

// charge accounts transferred bytes and decides whether the connection
// dies now.
func (fc *faultConn) charge(n int, cut bool) error {
	fc.mu.Lock()
	if fc.dead {
		fc.mu.Unlock()
		return ErrInjectedFault
	}
	fc.moved += n
	if cut || (fc.budget > 0 && fc.moved >= fc.budget) {
		fc.dead = true
		fc.mu.Unlock()
		fc.fi.mu.Lock()
		fc.fi.cuts++
		fc.fi.mu.Unlock()
		fc.Conn.Close()
		return ErrInjectedFault
	}
	fc.mu.Unlock()
	return nil
}

func (fc *faultConn) isDead() bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.dead
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.isDead() {
		return 0, ErrInjectedFault
	}
	cut, delay := fc.fi.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := fc.Conn.Read(p)
	if ferr := fc.charge(n, cut); ferr != nil && err == nil {
		// The bytes were consumed from the socket; dropping them mid-
		// frame is exactly the torn-read a dying TCP connection gives.
		return 0, ferr
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.isDead() {
		return 0, ErrInjectedFault
	}
	cut, delay := fc.fi.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		// Kill before the write: the peer sees a clean break, this side
		// believes nothing was sent — the replay path's worst case.
		if err := fc.charge(0, true); err != nil {
			return 0, err
		}
	}
	n, err := fc.Conn.Write(p)
	if ferr := fc.charge(n, false); ferr != nil && err == nil {
		return n, ferr
	}
	return n, err
}
