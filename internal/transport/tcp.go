package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/store"
	"dledger/internal/wire"
)

// Wire constants of the TCP backend.
const (
	handshakeMagic = 0x444C4544 // "DLED"
	classHigh      = 0
	classLow       = 1
	// maxFrame caps inbound frame sizes so a malicious peer cannot force
	// unbounded allocations.
	maxFrame = 64 << 20
	// dialRetryMax bounds the dial backoff.
	dialRetryMax = 2 * time.Second
)

// TCPOptions configures one TCP node.
type TCPOptions struct {
	Core    core.Config
	Replica replica.Params
	Self    int
	// Addrs[i] is node i's listen address. Addrs[Self] may use port 0;
	// the chosen address is available from Addr() after NewTCPNode.
	Addrs []string
	// Listener, when set, is used instead of listening on Addrs[Self].
	// Pre-binding listeners lets a launcher learn every node's real port
	// before any node starts dialing.
	Listener net.Listener
	// Keys, when set, enables ed25519 challenge-response authentication
	// of every connection (see auth.go). Without keys, peers are
	// identified only by their self-declared handshake id — acceptable
	// on trusted networks, not on open ones.
	Keys *Keyring
	// Store, when set, is the node's durable store: state it holds is
	// recovered before the node joins the mesh (the crash-restart path),
	// and protocol progress is persisted through it. Nil means no
	// durability at all (and no persistence overhead). The caller
	// retains ownership and closes it after Close.
	Store store.Store
	// OnDeliver observes delivered blocks (called on the node's loop).
	OnDeliver func(replica.Delivery)
}

// TCPNode is one DispersedLedger node on a TCP mesh.
type TCPNode struct {
	self  int
	loop  *eventLoop
	rep   *replica.Replica
	ln    net.Listener
	keys  *Keyring
	peers []*tcpPeer

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
	wg     sync.WaitGroup
}

// tcpPeer buffers outbound traffic to one peer: a FIFO for the
// high-priority (dispersal) class and per-epoch queues served in epoch
// order for the low-priority (retrieval) class, each drained by its own
// writer over its own connection so bulk retrieval frames never delay
// dispersal frames at the sender.
type tcpPeer struct {
	node *TCPNode
	id   int
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	high   [][]byte
	low    map[uint64][]lowFrame
	lowN   int
	closed bool
}

// lowFrame carries retrieval-class frames with enough metadata to purge
// them on stream cancellation.
type lowFrame struct {
	data     []byte
	epoch    uint64
	proposer int
	isReturn bool
}

// NewTCPNode starts the listener, the peer writers, and the replica.
func NewTCPNode(opts TCPOptions) (*TCPNode, error) {
	if opts.Self < 0 || opts.Self >= len(opts.Addrs) || len(opts.Addrs) != opts.Core.N {
		return nil, fmt.Errorf("transport: bad Self/Addrs for N=%d", opts.Core.N)
	}
	if opts.Core.CoinSecret == nil {
		return nil, errors.New("transport: TCP clusters must set an explicit CoinSecret")
	}
	if opts.Keys != nil {
		if opts.Keys.Self != opts.Self || len(opts.Keys.Publics) != opts.Core.N {
			return nil, errors.New("transport: keyring does not match Self/N")
		}
	}
	n := &TCPNode{self: opts.Self, loop: newEventLoop(), keys: opts.Keys}
	st := opts.Store
	if st == nil {
		st = store.NewNoop()
	}
	rep, err := replica.NewWithStore(opts.Core, opts.Self, opts.Replica, st, (*tcpCtx)(n))
	if err != nil {
		n.loop.close()
		return nil, err
	}
	if opts.OnDeliver != nil {
		rep.OnDeliver = opts.OnDeliver
	}
	n.rep = rep

	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", opts.Addrs[opts.Self])
		if err != nil {
			n.loop.close()
			return nil, err
		}
	}
	n.ln = ln

	for i, addr := range opts.Addrs {
		if i == opts.Self {
			n.peers = append(n.peers, nil)
			continue
		}
		p := &tcpPeer{node: n, id: i, addr: addr, low: map[uint64][]lowFrame{}}
		p.cond = sync.NewCond(&p.mu)
		n.peers = append(n.peers, p)
		n.wg.Add(2)
		go p.writer(classHigh)
		go p.writer(classLow)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	n.loop.post(func() { n.rep.Start() })
	return n, nil
}

// tcpCtx adapts TCPNode to replica.Context.
type tcpCtx TCPNode

func (c *tcpCtx) Now() time.Duration { return c.loop.now() }
func (c *tcpCtx) Send(to int, env wire.Envelope, prio wire.Priority, stream uint64) {
	n := (*TCPNode)(c)
	if to < 0 || to >= len(n.peers) || n.peers[to] == nil {
		return
	}
	n.peers[to].enqueue(env, prio, stream)
}
func (c *tcpCtx) After(d time.Duration, fn func()) { c.loop.after(d, fn) }

// Unsend implements replica.Unsender: queued-but-unsent ReturnChunk
// frames for the canceled retrieval are dropped before they reach TCP.
func (c *tcpCtx) Unsend(to int, epoch uint64, proposer int) {
	n := (*TCPNode)(c)
	if to < 0 || to >= len(n.peers) || n.peers[to] == nil {
		return
	}
	n.peers[to].purge(epoch, proposer)
}

// Addr returns the node's actual listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Submit hands a transaction to the node's mempool.
func (n *TCPNode) Submit(tx []byte) {
	n.loop.post(func() { n.rep.Submit(tx) })
}

// Inspect runs fn on the node's event loop and waits for it.
func (n *TCPNode) Inspect(fn func(r *replica.Replica)) {
	done := make(chan struct{})
	n.loop.post(func() {
		fn(n.rep)
		close(done)
	})
	<-done
}

// Close shuts the node down.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	n.mu.Unlock()

	n.ln.Close()
	for _, p := range n.peers {
		if p != nil {
			p.close()
		}
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	n.loop.close()
}

func (n *TCPNode) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *TCPNode) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns = append(n.conns, c)
	return true
}

// acceptLoop receives inbound connections: each starts with a handshake
// naming the sender, then carries length-prefixed envelopes.
func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if !n.trackConn(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()

	var from int
	if n.keys != nil {
		var err error
		from, _, err = authAccept(conn, n.keys)
		if err != nil {
			return
		}
	} else {
		var hs [7]byte
		if _, err := io.ReadFull(conn, hs[:]); err != nil {
			return
		}
		if binary.BigEndian.Uint32(hs[0:4]) != handshakeMagic {
			return
		}
		from = int(binary.BigEndian.Uint16(hs[4:6]))
	}
	if from < 0 || from >= len(n.peers) || from == n.self {
		return
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		env, err := wire.Decode(buf)
		if err != nil {
			continue // skip undecodable frames from this peer
		}
		// Authenticate the sender: the connection's handshake identity
		// overrides whatever the frame claims, so peers cannot spoof
		// each other within the mesh. (Production deployments would add
		// TLS or signatures on top; see README.)
		env.From = from
		n.loop.post(func() { n.rep.OnEnvelope(env) })
	}
}

// enqueue adds one framed message to the peer's queues.
func (p *tcpPeer) enqueue(env wire.Envelope, prio wire.Priority, stream uint64) {
	payload := env.Encode()
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if prio == wire.PrioDispersal {
		p.high = append(p.high, frame)
	} else {
		_, isReturn := env.Payload.(wire.ReturnChunk)
		p.low[stream] = append(p.low[stream], lowFrame{
			data: frame, epoch: env.Epoch, proposer: env.Proposer, isReturn: isReturn,
		})
		p.lowN++
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// purge drops queued ReturnChunk frames of one VID instance (stream
// cancellation).
func (p *tcpPeer) purge(epoch uint64, proposer int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s, q := range p.low {
		kept := q[:0]
		for _, f := range q {
			if f.isReturn && f.epoch == epoch && f.proposer == proposer {
				p.lowN--
			} else {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			delete(p.low, s)
		} else {
			p.low[s] = kept
		}
	}
}

// nextFrame pops the next frame of the given class, blocking until one is
// available or the peer closes.
func (p *tcpPeer) nextFrame(class int) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, false
		}
		if class == classHigh {
			if len(p.high) > 0 {
				f := p.high[0]
				p.high = p.high[1:]
				return f, true
			}
		} else if p.lowN > 0 {
			var best uint64
			found := false
			for s, q := range p.low {
				if len(q) > 0 && (!found || s < best) {
					best, found = s, true
				}
			}
			q := p.low[best]
			f := q[0]
			if len(q) == 1 {
				delete(p.low, best)
			} else {
				p.low[best] = q[1:]
			}
			p.lowN--
			return f.data, true
		}
		p.cond.Wait()
	}
}

// empty reports whether the class's queue is drained (for flushing).
func (p *tcpPeer) empty(class int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if class == classHigh {
		return len(p.high) == 0
	}
	return p.lowN == 0
}

func (p *tcpPeer) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// writer drains one class of the peer's queue over its own connection,
// redialing with backoff on failure.
func (p *tcpPeer) writer(class int) {
	defer p.node.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	backoff := 50 * time.Millisecond

	connect := func() bool {
		for {
			if p.node.isClosed() {
				return false
			}
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return false
			}
			c, err := net.DialTimeout("tcp", p.addr, time.Second)
			if err != nil {
				time.Sleep(backoff)
				if backoff < dialRetryMax {
					backoff *= 2
				}
				continue
			}
			backoff = 50 * time.Millisecond
			if !p.node.trackConn(c) {
				c.Close()
				return false
			}
			if p.node.keys != nil {
				if err := authDial(c, p.node.keys, byte(class)); err != nil {
					c.Close()
					time.Sleep(backoff)
					continue
				}
			} else {
				var hs [7]byte
				binary.BigEndian.PutUint32(hs[0:4], handshakeMagic)
				binary.BigEndian.PutUint16(hs[4:6], uint16(p.node.self))
				hs[6] = byte(class)
				if _, err := c.Write(hs[:]); err != nil {
					c.Close()
					continue
				}
			}
			conn = c
			bw = bufio.NewWriterSize(c, 256<<10)
			return true
		}
	}

	// pending holds frames taken from the queue that have not yet been
	// flushed to a connection; written counts how many of them have been
	// handed to the CURRENT connection's buffer. When a connection
	// breaks, everything buffered but unflushed would silently vanish —
	// up to the whole bufio buffer — so the writer replays all pending
	// frames on the next connection instead. Receivers tolerate the
	// duplicates this can produce (every protocol message is
	// deduplicated at its automaton).
	var pending [][]byte
	written := 0
	const flushPending = 64 // flush at least this often, bounding replay memory

	for {
		frame, ok := p.nextFrame(class)
		if !ok {
			if conn != nil {
				if bw != nil {
					bw.Flush()
				}
				conn.Close()
			}
			return
		}
		pending = append(pending, frame)
		for {
			if conn == nil {
				if !connect() {
					return
				}
				written = 0 // replay everything unflushed on the new conn
			}
			ok := true
			for written < len(pending) {
				if _, err := bw.Write(pending[written]); err != nil {
					ok = false
					break
				}
				written++
			}
			if ok && (len(pending) >= flushPending || p.empty(class)) {
				if err := bw.Flush(); err != nil {
					ok = false
				} else {
					pending = pending[:0]
					written = 0
				}
			}
			if ok {
				break
			}
			conn.Close()
			conn = nil
		}
	}
}
