package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dledger/internal/bufpool"
	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/store"
	"dledger/internal/telemetry"
	"dledger/internal/wire"
)

// Wire constants of the TCP backend.
const (
	handshakeMagic = 0x444C4544 // "DLED"
	classHigh      = 0
	classLow       = 1
	// maxFrame caps inbound frame sizes so a malicious peer cannot force
	// unbounded allocations.
	maxFrame = 64 << 20
	// dialRetryMax bounds the dial backoff.
	dialRetryMax = 2 * time.Second
	// Frame-ack replay protocol (see the writer comment): after the
	// handshake the writer announces (incarnation nonce, start seq) and
	// the receiver replies with its high-water stream position under
	// that nonce; thereafter the receiver re-reports its position every
	// ackEvery frames. ackInitTimeout bounds the handshake reply wait.
	ackEvery       = 32
	ackInitTimeout = 5 * time.Second
)

// TCPOptions configures one TCP node.
type TCPOptions struct {
	Core    core.Config
	Replica replica.Params
	Self    int
	// Addrs[i] is node i's listen address. Addrs[Self] may use port 0;
	// the chosen address is available from Addr() after NewTCPNode.
	Addrs []string
	// Listener, when set, is used instead of listening on Addrs[Self].
	// Pre-binding listeners lets a launcher learn every node's real port
	// before any node starts dialing.
	Listener net.Listener
	// Keys, when set, enables ed25519 challenge-response authentication
	// of every connection (see auth.go). Without keys, peers are
	// identified only by their self-declared handshake id — acceptable
	// on trusted networks, not on open ones.
	Keys *Keyring
	// Store, when set, is the node's durable store: state it holds is
	// recovered before the node joins the mesh (the crash-restart path),
	// and protocol progress is persisted through it. Nil means no
	// durability at all (and no persistence overhead). The caller
	// retains ownership and closes it after Close.
	Store store.Store
	// Wrap, when set, wraps every peer connection (dialed and accepted)
	// before use. Tests inject faults here (see FaultInjector); it must
	// not block.
	Wrap func(net.Conn) net.Conn
	// OnDeliver observes delivered blocks (called on the node's loop).
	OnDeliver func(replica.Delivery)
}

// TCPNode is one DispersedLedger node on a TCP mesh.
type TCPNode struct {
	self  int
	loop  *eventLoop
	rep   *replica.Replica
	ln    net.Listener
	keys  *Keyring
	wrap  func(net.Conn) net.Conn
	peers []*tcpPeer

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
	wg     sync.WaitGroup

	// recv tracks, per (peer, class), the highest stream position
	// processed under the peer writer's current incarnation nonce.
	recvMu sync.Mutex
	recv   map[[2]int]*recvState

	// tel holds the transport's telemetry handles (inert when the
	// replica params carry no telemetry bundle).
	tel tcpMetrics
}

// tcpMetrics is the TCP backend's telemetry handle set, indexed by
// traffic class where split. The zero value (telemetry disabled)
// no-ops.
type tcpMetrics struct {
	sentFrames [2]*telemetry.Counter
	sentBytes  [2]*telemetry.Counter
	recvFrames [2]*telemetry.Counter
	recvBytes  [2]*telemetry.Counter
	replayed   *telemetry.Counter
	acks       *telemetry.Counter
	// Per-peer link health, indexed by peer id (the self slot stays nil,
	// which no-ops): ack/replay counters split the global ones by link,
	// and peerRTT is the latest dispersal-class round-trip estimate.
	peerAcks     []*telemetry.Counter
	peerReplayed []*telemetry.Counter
	peerRTT      []*telemetry.Gauge
	// peerWriteQueue is each link's outbound frame backlog (both
	// classes), the transport half of the dl_queue_* backpressure
	// family.
	peerWriteQueue []*telemetry.Gauge
}

func newTCPMetrics(m *telemetry.Metrics, n, self int) tcpMetrics {
	reg := m.Registry()
	var t tcpMetrics
	labels := [2]string{classHigh: `class="dispersal"`, classLow: `class="retrieval"`}
	for c, lbl := range labels {
		t.sentFrames[c] = reg.Counter("dl_transport_sent_frames_total", lbl, "Frames queued to peers, by traffic class.")
		t.sentBytes[c] = reg.Counter("dl_transport_sent_bytes_total", lbl, "Frame bytes queued to peers, by traffic class.")
		t.recvFrames[c] = reg.Counter("dl_transport_recv_frames_total", lbl, "Frames received from peers, by traffic class.")
		t.recvBytes[c] = reg.Counter("dl_transport_recv_bytes_total", lbl, "Frame bytes received from peers, by traffic class.")
	}
	t.replayed = reg.Counter("dl_transport_replayed_frames_total", "", "Unacked frames re-sent on a fresh connection after a reconnect.")
	t.acks = reg.Counter("dl_transport_acks_total", "", "Stream-position acks received from peers.")
	t.peerAcks = make([]*telemetry.Counter, n)
	t.peerReplayed = make([]*telemetry.Counter, n)
	t.peerRTT = make([]*telemetry.Gauge, n)
	t.peerWriteQueue = make([]*telemetry.Gauge, n)
	for i := 0; i < n; i++ {
		if i == self {
			continue
		}
		lbl := fmt.Sprintf(`peer="%d"`, i)
		t.peerAcks[i] = reg.Counter("dl_transport_peer_acks_total", lbl, "Stream-position acks received, by peer link.")
		t.peerReplayed[i] = reg.Counter("dl_transport_peer_replayed_frames_total", lbl, "Frames replayed after a reconnect, by peer link.")
		t.peerRTT[i] = reg.Gauge("dl_transport_peer_rtt_us", lbl, "Latest dispersal-link round-trip estimate (flush to position ack), microseconds.")
		t.peerWriteQueue[i] = reg.Gauge("dl_queue_transport_write", lbl, "Outbound frames queued but not yet handed to the socket, by peer link.")
	}
	return t
}

// recvState is the receiver half of the frame-ack replay protocol.
type recvState struct {
	nonce  uint64
	maxSeq uint64
}

// tcpPeer buffers outbound traffic to one peer: a FIFO for the
// high-priority (dispersal) class and per-epoch queues served in epoch
// order for the low-priority (retrieval) class, each drained by its own
// writer over its own connection so bulk retrieval frames never delay
// dispersal frames at the sender.
type tcpPeer struct {
	node *TCPNode
	id   int
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	high   []*bufpool.Buf
	low    map[uint64][]lowFrame
	lowN   int
	closed bool
}

// lowFrame carries retrieval-class frames with enough metadata to purge
// them on stream cancellation.
type lowFrame struct {
	data     *bufpool.Buf
	epoch    uint64
	proposer int
	isReturn bool
}

// NewTCPNode starts the listener, the peer writers, and the replica.
func NewTCPNode(opts TCPOptions) (*TCPNode, error) {
	if opts.Self < 0 || opts.Self >= len(opts.Addrs) || len(opts.Addrs) != opts.Core.N {
		return nil, fmt.Errorf("transport: bad Self/Addrs for N=%d", opts.Core.N)
	}
	if opts.Core.CoinSecret == nil {
		return nil, errors.New("transport: TCP clusters must set an explicit CoinSecret")
	}
	if opts.Keys != nil {
		if opts.Keys.Self != opts.Self || len(opts.Keys.Publics) != opts.Core.N {
			return nil, errors.New("transport: keyring does not match Self/N")
		}
	}
	n := &TCPNode{
		self: opts.Self, loop: newEventLoop(), keys: opts.Keys, wrap: opts.Wrap,
		recv: map[[2]int]*recvState{},
		tel:  newTCPMetrics(opts.Replica.Telemetry, opts.Core.N, opts.Self),
	}
	st := opts.Store
	if st == nil {
		st = store.NewNoop()
	}
	rep, err := replica.NewWithStore(opts.Core, opts.Self, opts.Replica, st, (*tcpCtx)(n))
	if err != nil {
		n.loop.close()
		return nil, err
	}
	if opts.OnDeliver != nil {
		rep.OnDeliver = opts.OnDeliver
	}
	n.rep = rep

	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", opts.Addrs[opts.Self])
		if err != nil {
			n.loop.close()
			return nil, err
		}
	}
	n.ln = ln

	for i, addr := range opts.Addrs {
		if i == opts.Self {
			n.peers = append(n.peers, nil)
			continue
		}
		p := &tcpPeer{node: n, id: i, addr: addr, low: map[uint64][]lowFrame{}}
		p.cond = sync.NewCond(&p.mu)
		n.peers = append(n.peers, p)
		n.wg.Add(2)
		go p.writer(classHigh)
		go p.writer(classLow)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	n.loop.post(func() { n.rep.Start() })
	return n, nil
}

// tcpCtx adapts TCPNode to replica.Context.
type tcpCtx TCPNode

func (c *tcpCtx) Now() time.Duration { return c.loop.now() }
func (c *tcpCtx) Send(to int, env wire.Envelope, prio wire.Priority, stream uint64) {
	n := (*TCPNode)(c)
	if to < 0 || to >= len(n.peers) || n.peers[to] == nil {
		return
	}
	n.peers[to].enqueue(env, prio, stream)
}
func (c *tcpCtx) After(d time.Duration, fn func()) { c.loop.after(d, fn) }

// Unsend implements replica.Unsender: queued-but-unsent ReturnChunk
// frames for the canceled retrieval are dropped before they reach TCP.
func (c *tcpCtx) Unsend(to int, epoch uint64, proposer int) {
	n := (*TCPNode)(c)
	if to < 0 || to >= len(n.peers) || n.peers[to] == nil {
		return
	}
	n.peers[to].purge(epoch, proposer)
}

// Addr returns the node's actual listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Submit hands a transaction to the node's mempool.
func (n *TCPNode) Submit(tx []byte) {
	n.loop.post(func() { n.rep.Submit(tx) })
}

// Inspect runs fn on the node's event loop and waits for it.
func (n *TCPNode) Inspect(fn func(r *replica.Replica)) {
	done := make(chan struct{})
	n.loop.post(func() {
		fn(n.rep)
		close(done)
	})
	<-done
}

// Close shuts the node down.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	n.mu.Unlock()

	n.ln.Close()
	for _, p := range n.peers {
		if p != nil {
			p.close()
		}
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	n.loop.close()
}

func (n *TCPNode) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *TCPNode) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns = append(n.conns, c)
	return true
}

// acceptLoop receives inbound connections: each starts with a handshake
// naming the sender, then carries length-prefixed envelopes.
func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if n.wrap != nil {
			conn = n.wrap(conn)
		}
		if !n.trackConn(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func writeAck(conn net.Conn, count uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], count)
	_, err := conn.Write(buf[:])
	return err
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()

	var from int
	var class byte
	if n.keys != nil {
		var err error
		from, class, err = authAccept(conn, n.keys)
		if err != nil {
			return
		}
	} else {
		var hs [7]byte
		if _, err := io.ReadFull(conn, hs[:]); err != nil {
			return
		}
		if binary.BigEndian.Uint32(hs[0:4]) != handshakeMagic {
			return
		}
		from = int(binary.BigEndian.Uint16(hs[4:6]))
		class = hs[6]
	}
	if from < 0 || from >= len(n.peers) || from == n.self || class > classLow {
		return
	}
	// Ack handshake: the writer announces its incarnation nonce and the
	// stream position of the first frame this connection will offer; we
	// answer with the highest position already processed under that
	// nonce (so the writer prunes its replay tail), which is also where
	// this connection's frame positions start counting from.
	var ab [16]byte
	if _, err := io.ReadFull(conn, ab[:]); err != nil {
		return
	}
	nonce := binary.BigEndian.Uint64(ab[0:8])
	startSeq := binary.BigEndian.Uint64(ab[8:16])
	key := [2]int{from, int(class)}
	n.recvMu.Lock()
	st := n.recv[key]
	if st == nil || st.nonce != nonce {
		st = &recvState{nonce: nonce, maxSeq: startSeq - 1}
		n.recv[key] = st
	} else if startSeq-1 > st.maxSeq {
		st.maxSeq = startSeq - 1
	}
	connBase := st.maxSeq
	n.recvMu.Unlock()
	if writeAck(conn, connBase) != nil {
		return
	}

	br := bufio.NewReaderSize(conn, 256<<10)
	var lenBuf [4]byte
	var got uint64 // frames consumed on THIS connection
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		// The frame buffer is pooled: wire.Decode copies every
		// variable-length field out of it (see decodeBytes), so it can be
		// released as soon as decoding finishes.
		fb := bufpool.Get(int(size))
		buf := fb.Bytes()
		if _, err := io.ReadFull(br, buf); err != nil {
			fb.Release()
			return
		}
		// Every frame counts toward the ack — decodable or not — because
		// the sender counts flushed frames, not valid envelopes. The
		// stream position advances monotonically even if a lingering
		// older connection races this one: positions name the same
		// frames under the same nonce.
		got++
		n.tel.recvFrames[class].Inc()
		n.tel.recvBytes[class].Add(uint64(4 + size))
		pos := connBase + got
		n.recvMu.Lock()
		if st.nonce == nonce && pos > st.maxSeq {
			st.maxSeq = pos
		}
		ack := st.maxSeq
		n.recvMu.Unlock()
		if got%ackEvery == 0 {
			if writeAck(conn, ack) != nil {
				fb.Release()
				return
			}
		}
		env, err := wire.Decode(buf)
		fb.Release()
		if err != nil {
			continue // skip undecodable frames from this peer
		}
		// Authenticate the sender: the connection's handshake identity
		// overrides whatever the frame claims, so peers cannot spoof
		// each other within the mesh. (Production deployments would add
		// TLS or signatures on top; see README.)
		env.From = from
		n.loop.post(func() { n.rep.OnEnvelope(env) })
	}
}

// enqueue adds one framed message to the peer's queues. The frame lives
// in a pooled buffer whose single reference travels with it: queue →
// writer pending list → released when the receiver's ack covers it (or
// on purge/shutdown).
func (p *tcpPeer) enqueue(env wire.Envelope, prio wire.Priority, stream uint64) {
	ws := env.WireSize()
	frame := bufpool.Get(4 + ws)
	fb := frame.Bytes()
	binary.BigEndian.PutUint32(fb, uint32(ws))
	env.AppendTo(fb[4:4]) // fills fb[4:] in place: pooled cap >= 4+ws

	class := classLow
	if prio == wire.PrioDispersal {
		class = classHigh
	}
	p.node.tel.sentFrames[class].Inc()
	p.node.tel.sentBytes[class].Add(uint64(frame.Len()))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		frame.Release()
		return
	}
	if prio == wire.PrioDispersal {
		p.high = append(p.high, frame)
	} else {
		_, isReturn := env.Payload.(wire.ReturnChunk)
		p.low[stream] = append(p.low[stream], lowFrame{
			data: frame, epoch: env.Epoch, proposer: env.Proposer, isReturn: isReturn,
		})
		p.lowN++
	}
	p.noteDepthLocked()
	p.mu.Unlock()
	p.cond.Broadcast()
}

// noteDepthLocked mirrors the link's outbound backlog into its
// dl_queue_transport_write gauge. Caller holds p.mu.
func (p *tcpPeer) noteDepthLocked() {
	p.node.tel.peerWriteQueue[p.id].Set(int64(len(p.high) + p.lowN))
}

// purge drops queued ReturnChunk frames of one VID instance (stream
// cancellation).
func (p *tcpPeer) purge(epoch uint64, proposer int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s, q := range p.low {
		kept := q[:0]
		for _, f := range q {
			if f.isReturn && f.epoch == epoch && f.proposer == proposer {
				f.data.Release()
				p.lowN--
			} else {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			delete(p.low, s)
		} else {
			p.low[s] = kept
		}
	}
	p.noteDepthLocked()
}

// nextFrames drains up to max queued frames of the given class into
// `into` under one lock acquisition, blocking until at least one frame
// is available or the peer closes. Batching here is what turns the
// per-step burst of n-1 small sends into one buffered write + flush on
// the socket: the writer picks up the whole burst in a single pop
// instead of paying a lock round-trip and a write call per frame.
// Frame order is identical to repeated single pops — FIFO for the high
// class, lowest-stream-first for the low class.
func (p *tcpPeer) nextFrames(class int, into []*bufpool.Buf, max int) ([]*bufpool.Buf, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return into, false
		}
		if class == classHigh {
			if len(p.high) > 0 {
				n := len(p.high)
				if n > max {
					n = max
				}
				into = append(into, p.high[:n]...)
				rest := copy(p.high, p.high[n:])
				for i := rest; i < len(p.high); i++ {
					p.high[i] = nil
				}
				p.high = p.high[:rest]
				p.noteDepthLocked()
				return into, true
			}
		} else if p.lowN > 0 {
			for len(into) < max && p.lowN > 0 {
				var best uint64
				found := false
				for s, q := range p.low {
					if len(q) > 0 && (!found || s < best) {
						best, found = s, true
					}
				}
				// Popping from the best stream cannot change which stream
				// is best until it empties, so its whole queue drains
				// before the map is rescanned.
				q := p.low[best]
				take := len(q)
				if take > max-len(into) {
					take = max - len(into)
				}
				for i := 0; i < take; i++ {
					into = append(into, q[i].data)
				}
				if take == len(q) {
					delete(p.low, best)
				} else {
					p.low[best] = q[take:]
				}
				p.lowN -= take
			}
			p.noteDepthLocked()
			return into, true
		}
		p.cond.Wait()
	}
}

// empty reports whether the class's queue is drained (for flushing).
func (p *tcpPeer) empty(class int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if class == classHigh {
		return len(p.high) == 0
	}
	return p.lowN == 0
}

func (p *tcpPeer) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// incarnationNonce tags one writer incarnation's stream-position space
// so receivers can tell a restarted writer from a reconnecting one.
func incarnationNonce() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.BigEndian.Uint64(b[:])
}

// rttProbe estimates a link's round-trip time through the frame-ack
// protocol, one sample at a time: the writer arms (stream position of
// the last flushed frame, wall clock) when no probe is outstanding; the
// ackReader disarms it once the receiver's reported position covers the
// armed frame and publishes the elapsed time. The estimate includes the
// receiver's processing of up to ackEvery frames, making it a
// protocol-level health signal rather than a pure network ping — which
// is what link-health dashboards want. seq 0 means disarmed; `at` is
// stored before seq so a reader that sees seq armed sees its timestamp.
type rttProbe struct {
	seq atomic.Uint64
	at  atomic.Int64
}

// ackReader consumes stream-position reports from the receiving side of
// a writer connection, publishing the latest into ctr and counting each
// report into acks and peerAcks (nil-safe). When probe is non-nil it
// also resolves outstanding RTT probes into rtt.
func ackReader(c net.Conn, ctr *atomic.Uint64, acks, peerAcks *telemetry.Counter, probe *rttProbe, rtt *telemetry.Gauge) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(c, buf[:]); err != nil {
			return
		}
		acks.Inc()
		peerAcks.Inc()
		v := binary.BigEndian.Uint64(buf[:])
		if probe != nil {
			if s := probe.seq.Load(); s != 0 && v >= s {
				rtt.Set((time.Now().UnixNano() - probe.at.Load()) / int64(time.Microsecond))
				probe.seq.Store(0)
			}
		}
		for {
			cur := ctr.Load()
			if v <= cur || ctr.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// writer drains one class of the peer's queue over its own connection,
// redialing with backoff on failure.
//
// Reliability across reconnects: TCP guarantees nothing about bytes in
// flight when a connection dies — flushed frames may or may not have
// been processed. The writer therefore numbers its frames with
// monotone stream positions (1-based, per writer incarnation) and
// retains every frame until the receiver's reported position covers
// it. Each connection opens with (incarnation nonce, position of the
// first frame it will offer); the receiver replies with the highest
// position it has already processed under that nonce — the writer
// prunes to it and resends the rest — and re-reports its position
// every ackEvery frames. The nonce makes writer restarts
// self-describing (a fresh incarnation restarts the position space and
// the receiver's high-water mark with it), the handshake reply makes
// progress survive connections too short-lived to carry an in-stream
// ack, and positions — unlike raw frame counts — are immune to
// double-counting replayed duplicates. The receiver may still process
// up to ~ackEvery duplicate frames after a replay; every protocol
// message is deduplicated at its automaton.
func (p *tcpPeer) writer(class int) {
	defer p.node.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	var acked *atomic.Uint64 // latest position reported on the CURRENT conn
	backoff := 50 * time.Millisecond
	nonce := incarnationNonce()
	// RTT probes ride the dispersal-class link only: its frames are the
	// latency-critical ones, and one gauge per peer is what dlctl renders.
	var probe *rttProbe
	if class == classHigh {
		probe = &rttProbe{}
	}

	// pending holds every unacked frame; baseSeq is the stream position
	// of the last pruned frame (pending[i] sits at baseSeq+1+i);
	// written counts the pending frames handed to the CURRENT
	// connection; unflushed those written since the last flush.
	var pending []*bufpool.Buf
	var baseSeq uint64
	written := 0
	unflushed := 0
	const flushPending = 64 // flush at least this often

	prune := func(to uint64) {
		if to <= baseSeq {
			return
		}
		k := int(to - baseSeq)
		if k > len(pending) {
			k = len(pending)
		}
		// Acked frames will never be re-sent: their pooled buffers go
		// back to the pool here.
		for i := 0; i < k; i++ {
			pending[i].Release()
		}
		n := copy(pending, pending[k:])
		for i := n; i < len(pending); i++ {
			pending[i] = nil
		}
		pending = pending[:n]
		baseSeq += uint64(k)
		written -= k
		if written < 0 {
			written = 0
		}
	}
	releasePending := func() {
		for _, f := range pending {
			f.Release()
		}
		pending = nil
	}

	connect := func() bool {
		for {
			if p.node.isClosed() {
				return false
			}
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return false
			}
			c, err := net.DialTimeout("tcp", p.addr, time.Second)
			if err != nil {
				time.Sleep(backoff)
				if backoff < dialRetryMax {
					backoff *= 2
				}
				continue
			}
			backoff = 50 * time.Millisecond
			if p.node.wrap != nil {
				c = p.node.wrap(c)
			}
			if !p.node.trackConn(c) {
				c.Close()
				return false
			}
			if p.node.keys != nil {
				if err := authDial(c, p.node.keys, byte(class)); err != nil {
					c.Close()
					time.Sleep(backoff)
					continue
				}
			} else {
				var hs [7]byte
				binary.BigEndian.PutUint32(hs[0:4], handshakeMagic)
				binary.BigEndian.PutUint16(hs[4:6], uint16(p.node.self))
				hs[6] = byte(class)
				if _, err := c.Write(hs[:]); err != nil {
					c.Close()
					continue
				}
			}
			// Ack handshake: announce (nonce, first offered position),
			// learn how far the receiver already got, prune and replay
			// the rest on this connection.
			var ab [16]byte
			binary.BigEndian.PutUint64(ab[0:8], nonce)
			binary.BigEndian.PutUint64(ab[8:16], baseSeq+1)
			if _, err := c.Write(ab[:]); err != nil {
				c.Close()
				time.Sleep(backoff)
				continue
			}
			c.SetReadDeadline(time.Now().Add(ackInitTimeout))
			var rb [8]byte
			if _, err := io.ReadFull(c, rb[:]); err != nil {
				c.Close()
				time.Sleep(backoff)
				continue
			}
			c.SetReadDeadline(time.Time{})
			prune(binary.BigEndian.Uint64(rb[:]))
			ctr := &atomic.Uint64{}
			go ackReader(c, ctr, p.node.tel.acks, p.node.tel.peerAcks[p.id], probe, p.node.tel.peerRTT[p.id])
			conn = c
			bw = bufio.NewWriterSize(c, 256<<10)
			acked = ctr
			// Frames already written to the previous connection but not
			// pruned by the receiver's ack are about to be re-sent.
			p.node.tel.replayed.Add(uint64(written))
			p.node.tel.peerReplayed[p.id].Add(uint64(written))
			written = 0 // the whole unacked tail replays on this conn
			unflushed = 0
			return true
		}
	}

	// maxBatch bounds one queue drain; with the 256 KiB bufio writer the
	// whole batch typically reaches the socket as a single writev-style
	// flush.
	const maxBatch = 256
	var batch []*bufpool.Buf
	for {
		var ok bool
		batch, ok = p.nextFrames(class, batch[:0], maxBatch)
		if !ok {
			if conn != nil {
				if bw != nil {
					bw.Flush()
				}
				conn.Close()
			}
			releasePending()
			return
		}
		pending = append(pending, batch...)
		for {
			if conn == nil {
				if !connect() {
					releasePending()
					return
				}
			}
			prune(acked.Load())
			ok := true
			for written < len(pending) {
				if _, err := bw.Write(pending[written].Bytes()); err != nil {
					ok = false
					break
				}
				written++
				unflushed++
			}
			if ok && (unflushed >= flushPending || p.empty(class)) {
				if err := bw.Flush(); err != nil {
					ok = false
				} else {
					unflushed = 0
					// Arm an RTT probe on the last flushed frame when none
					// is outstanding; the ackReader resolves it.
					if probe != nil && probe.seq.Load() == 0 {
						if seq := baseSeq + uint64(written); seq > 0 {
							probe.at.Store(time.Now().UnixNano())
							probe.seq.Store(seq)
						}
					}
				}
			}
			if ok {
				break
			}
			conn.Close()
			conn = nil
		}
	}
}
