package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/store"
	"dledger/internal/workload"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestMemoryClusterDelivers(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{} // node -> delivered tx count
	c, err := NewMemoryCluster(MemoryOptions{
		Core: core.Config{N: 4, F: 1, Mode: core.ModeDL},
		Replica: replica.Params{
			BatchDelay: 20 * time.Millisecond,
		},
		OnDeliver: func(node int, d replica.Delivery) {
			mu.Lock()
			seen[node] += len(d.Txs)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.Submit(i, workload.Make(i, 1, 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < 4; i++ {
			if seen[i] < 4 {
				return false
			}
		}
		return true
	}, "all nodes deliver all 4 txs")
}

func TestMemoryClusterIdenticalLogs(t *testing.T) {
	var mu sync.Mutex
	logs := make([][]string, 4)
	c, err := NewMemoryCluster(MemoryOptions{
		Core:    core.Config{N: 4, F: 1, Mode: core.ModeDL},
		Replica: replica.Params{BatchDelay: 10 * time.Millisecond},
		Delay:   2 * time.Millisecond,
		OnDeliver: func(node int, d replica.Delivery) {
			mu.Lock()
			for _, tx := range d.Txs {
				logs[node] = append(logs[node], fmt.Sprintf("%d-%d:%x", d.Epoch, d.Proposer, tx[:8]))
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perNode = 25
	for i := 0; i < 4; i++ {
		for k := 0; k < perNode; k++ {
			c.Submit(i, workload.Make(i, uint32(k), 0, 128))
		}
	}
	waitFor(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < 4; i++ {
			if len(logs[i]) < 4*perNode {
				return false
			}
		}
		return true
	}, "all nodes deliver 100 txs")

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < 4; i++ {
		if len(logs[i]) != len(logs[0]) {
			t.Fatalf("log lengths differ: %d vs %d", len(logs[i]), len(logs[0]))
		}
		for k := range logs[0] {
			if logs[i][k] != logs[0][k] {
				t.Fatalf("logs diverge at %d: %s vs %s", k, logs[i][k], logs[0][k])
			}
		}
	}
}

func TestMemoryClusterSubmitOutOfRange(t *testing.T) {
	c, err := NewMemoryCluster(MemoryOptions{
		Core: core.Config{N: 4, F: 1, Mode: core.ModeDL},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit(7, []byte("x")); err == nil {
		t.Fatal("out-of-range submit accepted")
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestMemoryClusterInspect(t *testing.T) {
	c, err := NewMemoryCluster(MemoryOptions{
		Core:    core.Config{N: 4, F: 1, Mode: core.ModeDL},
		Replica: replica.Params{BatchDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Submit(0, workload.Make(0, 1, 0, 64))
	waitFor(t, 10*time.Second, func() bool {
		var done bool
		c.Inspect(0, func(r *replica.Replica) { done = r.Stats.DeliveredTxs >= 1 })
		return done
	}, "node 0 delivers its tx")
}

func newTCPCluster(t *testing.T, n, f int, mode core.Mode) []*TCPNode {
	t.Helper()
	// Pre-bind every listener so all real ports are known before any node
	// starts dialing.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*TCPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewTCPNode(TCPOptions{
			Core:     core.Config{N: n, F: f, Mode: mode, CoinSecret: []byte("tcp test secret")},
			Replica:  replica.Params{BatchDelay: 20 * time.Millisecond},
			Self:     i,
			Addrs:    addrs,
			Listener: listeners[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes
}

func TestTCPClusterDelivers(t *testing.T) {
	nodes := newTCPCluster(t, 4, 1, core.ModeDL)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i, n := range nodes {
		for k := 0; k < 5; k++ {
			n.Submit(workload.Make(i, uint32(k), 0, 200))
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		ok := true
		for _, n := range nodes {
			n.Inspect(func(r *replica.Replica) {
				if r.Stats.DeliveredTxs < 20 {
					ok = false
				}
			})
		}
		return ok
	}, "all TCP nodes deliver all 20 txs")
}

func TestTCPClusterHB(t *testing.T) {
	nodes := newTCPCluster(t, 4, 1, core.ModeHB)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i, n := range nodes {
		n.Submit(workload.Make(i, 9, 0, 100))
	}
	waitFor(t, 30*time.Second, func() bool {
		ok := true
		for _, n := range nodes {
			n.Inspect(func(r *replica.Replica) {
				if r.Stats.DeliveredTxs < 4 {
					ok = false
				}
			})
		}
		return ok
	}, "HB over TCP delivers")
}

func TestTCPNodeValidation(t *testing.T) {
	if _, err := NewTCPNode(TCPOptions{
		Core:  core.Config{N: 4, F: 1, CoinSecret: []byte("s")},
		Self:  9,
		Addrs: []string{"a", "b", "c", "d"},
	}); err == nil {
		t.Fatal("bad Self accepted")
	}
	if _, err := NewTCPNode(TCPOptions{
		Core:  core.Config{N: 4, F: 1},
		Self:  0,
		Addrs: []string{"127.0.0.1:0", "x", "y", "z"},
	}); err == nil {
		t.Fatal("missing coin secret accepted")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	nodes := newTCPCluster(t, 4, 1, core.ModeDL)
	for _, n := range nodes {
		n.Close()
		n.Close() // second close must not panic or deadlock
	}
}

// TestMemoryClusterRestartFromStores shuts a whole in-process cluster
// down and rebuilds it over the same stores (with a small checkpoint
// interval so recovery crosses a checkpoint, not just raw WAL replay):
// the new cluster must resume from the recovered log position, not
// re-deliver, and keep delivering.
func TestMemoryClusterRestartFromStores(t *testing.T) {
	stores := make([]store.Store, 4)
	mems := make([]*store.MemStore, 4)
	for i := range stores {
		mems[i] = store.NewMem()
		stores[i] = mems[i]
	}
	opts := MemoryOptions{
		Core:    core.Config{N: 4, F: 1, Mode: core.ModeDL},
		Replica: replica.Params{BatchDelay: 10 * time.Millisecond, CheckpointEvery: 2},
		Stores:  stores,
	}
	c, err := NewMemoryCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for k := 0; k < 10; k++ {
			c.Submit(i, workload.Make(i, uint32(k), 0, 100))
		}
	}
	var before int64
	waitFor(t, 20*time.Second, func() bool {
		c.Inspect(0, func(r *replica.Replica) { before = r.Stats.EpochsDelivered })
		return before >= 4
	}, "first incarnation delivers epochs")
	var txsBefore int64
	c.Inspect(0, func(r *replica.Replica) { txsBefore = r.Stats.DeliveredTxs })
	c.Close()

	for i := range stores {
		mems[i] = mems[i].Reopen()
		stores[i] = mems[i]
	}
	opts.Stores = stores
	c2, err := NewMemoryCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var recovered, recoveredTxs int64
	c2.Inspect(0, func(r *replica.Replica) {
		recovered = r.Stats.EpochsDelivered
		recoveredTxs = r.Stats.DeliveredTxs
	})
	if recovered < before || recoveredTxs != txsBefore {
		t.Fatalf("recovered epochs=%d txs=%d, want >=%d / ==%d", recovered, recoveredTxs, before, txsBefore)
	}
	for i := 0; i < 4; i++ {
		for k := 0; k < 10; k++ {
			c2.Submit(i, workload.Make(i, uint32(100+k), 0, 100))
		}
	}
	waitFor(t, 20*time.Second, func() bool {
		var now int64
		c2.Inspect(0, func(r *replica.Replica) { now = r.Stats.EpochsDelivered })
		return now > recovered
	}, "restarted cluster keeps delivering")
}

// TestEpochCounterConsistentAcrossRestarts runs a cluster through three
// incarnations over the same stores (checkpointing every 2 epochs, so
// recovery crosses checkpoint + WAL replay) and checks the recovered
// EpochsDelivered counter always equals the engine's delivered position
// — the counter must be replayed, not re-counted or double-counted.
func TestEpochCounterConsistentAcrossRestarts(t *testing.T) {
	mems := make([]*store.MemStore, 4)
	stores := make([]store.Store, 4)
	for i := range mems {
		mems[i] = store.NewMem()
		stores[i] = mems[i]
	}
	opts := MemoryOptions{
		Core:    core.Config{N: 4, F: 1, Mode: core.ModeDL},
		Replica: replica.Params{BatchDelay: 5 * time.Millisecond, CheckpointEvery: 2},
		Stores:  stores,
	}
	for round := 0; round < 3; round++ {
		c, err := NewMemoryCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for k := 0; k < 20; k++ {
				c.Submit(i, workload.Make(i, uint32(round*100+k), 0, 100))
			}
		}
		// 60 s: generous for a correctness (not timing) assertion — under
		// -race with other CPU-heavy packages in parallel, the real-time
		// cluster can be starved well past the usual 20 s.
		waitFor(t, 60*time.Second, func() bool {
			var done bool
			c.Inspect(0, func(r *replica.Replica) {
				done = r.Stats.EpochsDelivered >= int64(20*(round+1))
			})
			return done
		}, "cluster delivers this round's epochs")
		c.Inspect(0, func(r *replica.Replica) {
			if r.Stats.EpochsDelivered != int64(r.Engine().DeliveredEpoch()) {
				t.Errorf("round %d: EpochsDelivered=%d but engine at %d",
					round, r.Stats.EpochsDelivered, r.Engine().DeliveredEpoch())
			}
		})
		c.Close()
		for i := range mems {
			mems[i] = mems[i].Reopen()
			stores[i] = mems[i]
		}
		opts.Stores = stores
	}
}
