package transport

import (
	"net"
	"testing"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/workload"
)

// TestFaultConnKillsConnections sanity-checks the wrapper itself: a
// connection with a byte budget dies after roughly that many bytes.
func TestFaultConnKillsConnections(t *testing.T) {
	fi := NewFaultInjector(7, FaultOptions{KillAfterBytes: 1 << 10})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := fi.Wrap(a)
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 256)
	var err error
	for i := 0; i < 64; i++ {
		if _, err = wrapped.Write(buf); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("connection survived far past its byte budget")
	}
	if fi.Cuts() != 1 {
		t.Fatalf("cuts = %d, want 1", fi.Cuts())
	}
}

// TestTCPClusterSurvivesFaultyConnections runs a real 4-node TCP mesh
// where every connection is seeded to die young and stall randomly, and
// asserts the reconnect/replay machinery still delivers every
// transaction to every node — the chaos-style regression net for the
// transport paths the emulator cannot reach (dial backoff, pending-frame
// replay, reader resynchronization).
func TestTCPClusterSurvivesFaultyConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("faulty-transport test needs a few seconds of wall clock")
	}
	const n, waves, txPerWave = 4, 5, 6
	const txPerNode = waves * txPerWave
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	injectors := make([]*FaultInjector, n)
	nodes := make([]*TCPNode, n)
	for i := 0; i < n; i++ {
		injectors[i] = NewFaultInjector(int64(1000+i), FaultOptions{
			KillAfterBytes: 4 << 10,
			CutProbability: 0.01,
			MaxDelay:       time.Millisecond,
		})
		node, err := NewTCPNode(TCPOptions{
			Core:     core.Config{N: n, F: 1, CoinSecret: []byte("faulty tcp secret")},
			Replica:  replica.Params{BatchDelay: 20 * time.Millisecond},
			Self:     i,
			Addrs:    addrs,
			Listener: listeners[i],
			Wrap:     injectors[i].Wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Submit in waves so traffic keeps flowing while connections die and
	// come back — reconnects must replay mid-stream, not just at start.
	for w := 0; w < waves; w++ {
		for i, node := range nodes {
			for k := 0; k < txPerWave; k++ {
				node.Submit(workload.Make(i, uint32(w*txPerWave+k), 0, 200))
			}
		}
		time.Sleep(150 * time.Millisecond)
	}
	waitFor(t, 60*time.Second, func() bool {
		ok := true
		for _, node := range nodes {
			node.Inspect(func(r *replica.Replica) {
				if r.Stats.DeliveredTxs < n*txPerNode {
					ok = false
				}
			})
		}
		return ok
	}, "all nodes deliver all txs despite dying connections")

	cuts := 0
	for _, fi := range injectors {
		cuts += fi.Cuts()
	}
	if cuts == 0 {
		t.Fatal("no connection was ever killed — the test exercised nothing")
	}
	t.Logf("delivered %d txs per node across %d injected connection deaths", n*txPerNode, cuts)
}
