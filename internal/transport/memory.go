package transport

import (
	"fmt"
	"time"

	"dledger/internal/core"
	"dledger/internal/replica"
	"dledger/internal/store"
	"dledger/internal/telemetry"
	"dledger/internal/wire"
)

// MemoryCluster runs a full cluster in one process, connecting nodes with
// channels. Unlike the simnet emulator it runs in real time with real
// concurrency — it is the backend of the public API and the quickstart
// example, and doubles as a stress test of the replica's event-loop
// threading model.
type MemoryCluster struct {
	nodes []*memNode
}

type memNode struct {
	self    int
	loop    *eventLoop
	cluster *MemoryCluster
	replica *replica.Replica
	// delay is an optional artificial one-way latency between nodes.
	delay time.Duration
}

// memCtx implements replica.Context on the node's event loop.
func (n *memNode) Now() time.Duration { return n.loop.now() }

func (n *memNode) Send(to int, env wire.Envelope, prio wire.Priority, stream uint64) {
	peer := n.cluster.nodes[to]
	deliver := func() { peer.loop.post(func() { peer.replica.OnEnvelope(env) }) }
	if n.delay > 0 {
		time.AfterFunc(n.delay, deliver)
	} else {
		deliver()
	}
}

func (n *memNode) After(d time.Duration, fn func()) { n.loop.after(d, fn) }

// MemoryOptions configures an in-process cluster.
type MemoryOptions struct {
	Core    core.Config
	Replica replica.Params
	// Delay is an artificial one-way message latency (0 = none).
	Delay time.Duration
	// Stores, when set, provides each node's durable store (len must be
	// N); nodes recover whatever state the stores hold. Nil runs every
	// node without durability (zero persistence overhead). The caller
	// retains ownership (and closing) of provided stores.
	Stores []store.Store
	// OnDeliver, when set, is installed on every replica (called on the
	// node's event loop).
	OnDeliver func(node int, d replica.Delivery)
	// Telemetry, when set, provides each node's telemetry bundle (len
	// must be N; entries may be nil). It overrides Replica.Telemetry,
	// which — being shared across nodes — must stay nil.
	Telemetry []*telemetry.Metrics
}

// NewMemoryCluster builds and starts an in-process cluster.
func NewMemoryCluster(opts MemoryOptions) (*MemoryCluster, error) {
	if opts.Core.CoinSecret == nil {
		opts.Core.CoinSecret = []byte("memory cluster coin secret")
	}
	if opts.Stores != nil && len(opts.Stores) != opts.Core.N {
		return nil, fmt.Errorf("transport: %d stores for N=%d", len(opts.Stores), opts.Core.N)
	}
	if opts.Telemetry != nil && len(opts.Telemetry) != opts.Core.N {
		return nil, fmt.Errorf("transport: %d telemetry bundles for N=%d", len(opts.Telemetry), opts.Core.N)
	}
	c := &MemoryCluster{}
	for i := 0; i < opts.Core.N; i++ {
		n := &memNode{self: i, loop: newEventLoop(), cluster: c, delay: opts.Delay}
		st := store.Store(nil)
		if opts.Stores != nil {
			st = opts.Stores[i]
		}
		if st == nil {
			st = store.NewNoop()
		}
		params := opts.Replica
		if opts.Telemetry != nil {
			params.Telemetry = opts.Telemetry[i]
		}
		r, err := replica.NewWithStore(opts.Core, i, params, st, n)
		if err != nil {
			c.Close()
			return nil, err
		}
		if opts.OnDeliver != nil {
			i := i
			r.OnDeliver = func(d replica.Delivery) { opts.OnDeliver(i, d) }
		}
		n.replica = r
		c.nodes = append(c.nodes, n)
	}
	for _, n := range c.nodes {
		n := n
		n.loop.post(func() { n.replica.Start() })
	}
	return c, nil
}

// Submit hands a transaction to node i's mempool.
func (c *MemoryCluster) Submit(i int, tx []byte) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("transport: node %d out of range", i)
	}
	n := c.nodes[i]
	n.loop.post(func() { n.replica.Submit(tx) })
	return nil
}

// Inspect runs fn on node i's event loop and waits for it, giving safe
// access to the replica (e.g. its Stats).
func (c *MemoryCluster) Inspect(i int, fn func(r *replica.Replica)) {
	done := make(chan struct{})
	n := c.nodes[i]
	n.loop.post(func() {
		fn(n.replica)
		close(done)
	})
	<-done
}

// N returns the cluster size.
func (c *MemoryCluster) N() int { return len(c.nodes) }

// Close stops all event loops.
func (c *MemoryCluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.loop.close()
		}
	}
}
