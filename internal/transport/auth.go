package transport

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Transport authentication.
//
// The paper's security model assumes authenticated point-to-point
// channels (§2.4); the consensus protocol itself is signature-free. The
// TCP backend therefore authenticates at connection setup: the dialer
// proves possession of its node's ed25519 key by signing a random
// challenge from the listener, binding the connection to a node id.
// Every subsequent frame on the connection is attributed to that id,
// which is exactly the channel-authentication assumption. (Confidential
// transport — TLS — can be layered on top and is out of scope, as in
// the paper's prototype.)

// Keyring holds the cluster's identity keys for one node.
type Keyring struct {
	Self    int
	Private ed25519.PrivateKey
	// Publics[i] is node i's public key.
	Publics []ed25519.PublicKey
}

// GenerateKeyring builds keyrings for an n-node cluster from a reader of
// randomness (pass crypto/rand.Reader in production; a deterministic
// reader in tests).
func GenerateKeyring(n int, random io.Reader) ([]*Keyring, error) {
	if random == nil {
		random = rand.Reader
	}
	pubs := make([]ed25519.PublicKey, n)
	privs := make([]ed25519.PrivateKey, n)
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(random)
		if err != nil {
			return nil, err
		}
		pubs[i], privs[i] = pub, priv
	}
	out := make([]*Keyring, n)
	for i := 0; i < n; i++ {
		out[i] = &Keyring{Self: i, Private: privs[i], Publics: pubs}
	}
	return out, nil
}

const (
	challengeSize = 32
	authTimeout   = 5 * time.Second
)

// Errors returned by the authentication handshake.
var (
	ErrAuthFailed = errors.New("transport: peer authentication failed")
	errBadMagic   = errors.New("transport: bad handshake magic")
)

// authAccept runs the listener side of the handshake: send a challenge,
// receive (magic, from, class, signature), verify. It returns the
// authenticated peer id and connection class.
func authAccept(conn net.Conn, keys *Keyring) (from int, class byte, err error) {
	deadline := time.Now().Add(authTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return 0, 0, err
	}
	defer conn.SetDeadline(time.Time{})

	var challenge [challengeSize]byte
	if _, err := rand.Read(challenge[:]); err != nil {
		return 0, 0, err
	}
	if _, err := conn.Write(challenge[:]); err != nil {
		return 0, 0, err
	}
	// magic(4) | from(2) | class(1) | signature(64)
	var buf [7 + ed25519.SignatureSize]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, err
	}
	if binary.BigEndian.Uint32(buf[0:4]) != handshakeMagic {
		return 0, 0, errBadMagic
	}
	from = int(binary.BigEndian.Uint16(buf[4:6]))
	class = buf[6]
	if from < 0 || from >= len(keys.Publics) {
		return 0, 0, ErrAuthFailed
	}
	msg := authMessage(challenge, from, class)
	if !ed25519.Verify(keys.Publics[from], msg, buf[7:]) {
		return 0, 0, fmt.Errorf("%w: node %d signature invalid", ErrAuthFailed, from)
	}
	return from, class, nil
}

// authDial runs the dialer side: receive the challenge and answer with
// the signed (magic, self, class) tuple.
func authDial(conn net.Conn, keys *Keyring, class byte) error {
	deadline := time.Now().Add(authTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	defer conn.SetDeadline(time.Time{})

	var challenge [challengeSize]byte
	if _, err := io.ReadFull(conn, challenge[:]); err != nil {
		return err
	}
	var buf [7 + ed25519.SignatureSize]byte
	binary.BigEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.BigEndian.PutUint16(buf[4:6], uint16(keys.Self))
	buf[6] = class
	sig := ed25519.Sign(keys.Private, authMessage(challenge, keys.Self, class))
	copy(buf[7:], sig)
	_, err := conn.Write(buf[:])
	return err
}

// authMessage is the byte string actually signed: the challenge bound to
// the claimed identity and connection class, with a domain prefix so the
// signature cannot be confused with any other protocol signature.
func authMessage(challenge [challengeSize]byte, from int, class byte) []byte {
	msg := make([]byte, 0, 16+challengeSize+3)
	msg = append(msg, []byte("dledger-authv1:")...)
	msg = append(msg, challenge[:]...)
	msg = binary.BigEndian.AppendUint16(msg, uint16(from))
	return append(msg, class)
}
