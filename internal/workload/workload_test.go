package workload

import (
	"math"
	"testing"
	"time"
)

func TestMakeParseRoundTrip(t *testing.T) {
	tx := Make(7, 42, 1500*time.Millisecond, 250)
	if len(tx) != 250 {
		t.Fatalf("tx size %d, want 250", len(tx))
	}
	got, err := Parse(tx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 7 || got.Seq != 42 || got.Submitted != 1500*time.Millisecond {
		t.Fatalf("parsed %+v", got)
	}
}

func TestMakeClampsSize(t *testing.T) {
	tx := Make(0, 1, 0, 3)
	if len(tx) != MinTxSize {
		t.Fatalf("undersized request produced %d bytes", len(tx))
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, MinTxSize-1)); err == nil {
		t.Fatal("short tx parsed")
	}
}

func TestGeneratorRate(t *testing.T) {
	// 1000-byte txs at 100 KB/s => 100 tx/s => mean gap 10 ms. Sum of
	// 10k exponential gaps should be ~100 s within a few percent.
	g := NewGenerator(0, 1000, 100_000, 1)
	var total time.Duration
	now := time.Duration(0)
	const n = 10_000
	for i := 0; i < n; i++ {
		tx, gap := g.Next(now)
		now += gap
		total += gap
		parsed, err := Parse(tx)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Origin != 0 || parsed.Submitted != now {
			t.Fatalf("tx %d metadata wrong: %+v (now %v)", i, parsed, now)
		}
	}
	wantMean := 10 * time.Millisecond
	gotMean := total / n
	if math.Abs(float64(gotMean-wantMean))/float64(wantMean) > 0.05 {
		t.Fatalf("mean gap %v, want ~%v", gotMean, wantMean)
	}
	if g.Count() != n {
		t.Fatalf("count %d", g.Count())
	}
}

func TestGeneratorSequencesUnique(t *testing.T) {
	g := NewGenerator(3, 100, 1000, 2)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		tx, _ := g.Next(0)
		p, _ := Parse(tx)
		if seen[p.Seq] {
			t.Fatal("duplicate sequence number")
		}
		seen[p.Seq] = true
	}
}
