// Package workload generates the transaction load of the paper's
// evaluation: every node runs a Poisson arrival process of fixed-size
// transactions (§6.1). Each transaction embeds its origin node, a
// sequence number and its submission timestamp so that delivery-time
// observers can compute per-transaction confirmation latency and
// distinguish local from remote transactions (§6.2's latency metric).
package workload

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"time"
)

// HeaderSize is the metadata prefix of every transaction.
const HeaderSize = 2 + 4 + 8

// MinTxSize is the smallest valid transaction size.
const MinTxSize = HeaderSize

// Tx is a parsed transaction header.
type Tx struct {
	Origin    int
	Seq       uint32
	Submitted time.Duration // simulated submission time
}

// Make builds a transaction of exactly size bytes (>= MinTxSize) carrying
// the given metadata; the remainder is zero padding.
func Make(origin int, seq uint32, submitted time.Duration, size int) []byte {
	if size < MinTxSize {
		size = MinTxSize
	}
	tx := make([]byte, size)
	binary.BigEndian.PutUint16(tx[0:2], uint16(origin))
	binary.BigEndian.PutUint32(tx[2:6], seq)
	binary.BigEndian.PutUint64(tx[6:14], uint64(submitted))
	return tx
}

// ErrBadTx is returned by Parse for malformed transactions.
var ErrBadTx = errors.New("workload: transaction too short")

// Parse extracts the metadata header of a transaction.
func Parse(tx []byte) (Tx, error) {
	if len(tx) < MinTxSize {
		return Tx{}, ErrBadTx
	}
	return Tx{
		Origin:    int(binary.BigEndian.Uint16(tx[0:2])),
		Seq:       binary.BigEndian.Uint32(tx[2:6]),
		Submitted: time.Duration(binary.BigEndian.Uint64(tx[6:14])),
	}, nil
}

// Generator produces Poisson transaction arrivals for one node.
type Generator struct {
	origin int
	size   int
	mean   time.Duration // mean inter-arrival gap
	rng    *rand.Rand
	seq    uint32
}

// NewGenerator creates a generator for `origin` producing transactions of
// txSize bytes at `rate` bytes/second (the paper quotes offered load in
// MB/s per node). Rate must be positive.
func NewGenerator(origin int, txSize int, rate float64, seed int64) *Generator {
	if txSize < MinTxSize {
		txSize = MinTxSize
	}
	txPerSec := rate / float64(txSize)
	return &Generator{
		origin: origin,
		size:   txSize,
		mean:   time.Duration(float64(time.Second) / txPerSec),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Next returns the next transaction and the inter-arrival gap before it
// (exponentially distributed — a Poisson process).
func (g *Generator) Next(now time.Duration) (tx []byte, gap time.Duration) {
	gap = time.Duration(g.rng.ExpFloat64() * float64(g.mean))
	g.seq++
	return Make(g.origin, g.seq, now+gap, g.size), gap
}

// Count returns how many transactions have been generated.
func (g *Generator) Count() uint32 { return g.seq }
